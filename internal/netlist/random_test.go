package netlist

import (
	"testing"

	"repro/internal/rng"
)

func TestRandomNetlistShape(t *testing.T) {
	r := rng.NewFib(1)
	nl, err := Random(RandomOptions{Cells: 100, Nets: 150, MaxPins: 5, MaxArea: 3, Locality: 0.7}, r)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 100 || nl.NumNets() != 150 {
		t.Fatalf("cells=%d nets=%d", nl.NumCells(), nl.NumNets())
	}
	for _, net := range nl.Nets() {
		if len(net.Cells) < 2 || len(net.Cells) > 5 {
			t.Fatalf("net %s has %d pins", net.Name, len(net.Cells))
		}
		seen := map[int32]bool{}
		for _, c := range net.Cells {
			if seen[c] {
				t.Fatalf("net %s repeats cell %d", net.Name, c)
			}
			seen[c] = true
		}
	}
	for _, c := range nl.Cells() {
		if c.Area < 1 || c.Area > 3 {
			t.Fatalf("cell %s area %d", c.Name, c.Area)
		}
	}
}

func TestRandomNetlistDeterministic(t *testing.T) {
	opts := RandomOptions{Cells: 40, Nets: 60, MaxPins: 4}
	a, err := Random(opts, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(opts, rng.NewFib(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNets() != b.NumNets() {
		t.Fatal("seed determinism broken")
	}
	for i := range a.Nets() {
		an, bn := a.Nets()[i], b.Nets()[i]
		if len(an.Cells) != len(bn.Cells) {
			t.Fatalf("net %d pin counts differ", i)
		}
		for j := range an.Cells {
			if an.Cells[j] != bn.Cells[j] {
				t.Fatalf("net %d pin %d differs", i, j)
			}
		}
	}
}

func TestRandomNetlistLocality(t *testing.T) {
	// With high locality, the mean pin-index spread should be much
	// smaller than under uniform selection.
	r := rng.NewFib(3)
	spread := func(nl *Netlist) float64 {
		var total, count float64
		for _, net := range nl.Nets() {
			min, max := net.Cells[0], net.Cells[0]
			for _, c := range net.Cells {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			total += float64(max - min)
			count++
		}
		return total / count
	}
	local, err := Random(RandomOptions{Cells: 400, Nets: 300, MaxPins: 3, Locality: 0.95, Window: 10}, r)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Random(RandomOptions{Cells: 400, Nets: 300, MaxPins: 3, Locality: 0}, r)
	if err != nil {
		t.Fatal(err)
	}
	if spread(local) >= spread(global)/2 {
		t.Fatalf("locality ineffective: local spread %.1f vs global %.1f", spread(local), spread(global))
	}
}

func TestRandomNetlistErrors(t *testing.T) {
	r := rng.NewFib(1)
	if _, err := Random(RandomOptions{Cells: 1, Nets: 1}, r); err == nil {
		t.Fatal("1 cell accepted")
	}
	if _, err := Random(RandomOptions{Cells: 10, Nets: -1}, r); err == nil {
		t.Fatal("negative nets accepted")
	}
	if _, err := Random(RandomOptions{Cells: 10, Nets: 1, Locality: 1.5}, r); err == nil {
		t.Fatal("locality > 1 accepted")
	}
}

func TestRandomNetlistExpandsAndPartitions(t *testing.T) {
	// End-to-end: random netlist → clique expansion builds a valid graph.
	r := rng.NewFib(5)
	nl, err := Random(RandomOptions{Cells: 60, Nets: 80, MaxPins: 4, Locality: 0.8}, r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := nl.CliqueExpand()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g2, err := nl.StarExpand()
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}
