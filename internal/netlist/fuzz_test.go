package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	f.Add("cell a 1\ncell b 2\nnet n a b\n")
	f.Add("# comment\ncell x\n")
	f.Add("net n a b\n")
	f.Add("cell a 0\n")
	f.Add("cell a 1\ncell a 1\n")
	f.Add("cell a 1\ncell b 1\nnet n a a\n")
	f.Fuzz(func(t *testing.T, in string) {
		nl, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted netlists must round-trip and expand without panics.
		var buf bytes.Buffer
		if werr := Write(&buf, nl); werr != nil {
			t.Fatalf("write-back failed: %v", werr)
		}
		nl2, rerr := Parse(&buf)
		if rerr != nil {
			t.Fatalf("round trip parse failed: %v\ninput %q", rerr, in)
		}
		if nl2.NumCells() != nl.NumCells() || nl2.NumNets() != nl.NumNets() {
			t.Fatalf("round trip changed counts for %q", in)
		}
		if g, err := nl.CliqueExpand(); err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("clique expansion invalid: %v", verr)
			}
		}
		if g, err := nl.StarExpand(); err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("star expansion invalid: %v", verr)
			}
		}
	})
}
