package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func build(t *testing.T) *Netlist {
	t.Helper()
	nl := New()
	for _, c := range []string{"a", "b", "c", "d"} {
		if err := nl.AddCell(c, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := nl.AddNet("n1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddNet("n2", "b", "c", "d"); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestAddCellErrors(t *testing.T) {
	nl := New()
	if err := nl.AddCell("", 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := nl.AddCell("a", 0); err == nil {
		t.Fatal("zero area accepted")
	}
	if err := nl.AddCell("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddCell("a", 2); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestAddNetErrors(t *testing.T) {
	nl := New()
	_ = nl.AddCell("a", 1)
	_ = nl.AddCell("b", 1)
	if err := nl.AddNet("n", "a"); err == nil {
		t.Fatal("1-terminal net accepted")
	}
	if err := nl.AddNet("n", "a", "a"); err == nil {
		t.Fatal("duplicate terminal accepted")
	}
	if err := nl.AddNet("n", "a", "zz"); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if err := nl.AddNet("n", "a", "b"); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueExpand(t *testing.T) {
	nl := build(t)
	g, err := nl.CliqueExpand()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Fatalf("n=%d", g.N())
	}
	// n1: edge a-b. n2: triangle b-c, b-d, c-d. Total 4 edges.
	if g.M() != 4 {
		t.Fatalf("m=%d", g.M())
	}
	ia, _ := nl.CellIndex("a")
	ib, _ := nl.CellIndex("b")
	if !g.HasEdge(ia, ib) {
		t.Fatal("missing clique edge a-b")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueExpandSharedPairsSum(t *testing.T) {
	nl := New()
	_ = nl.AddCell("a", 1)
	_ = nl.AddCell("b", 1)
	_ = nl.AddNet("n1", "a", "b")
	_ = nl.AddNet("n2", "a", "b")
	g, err := nl.CliqueExpand()
	if err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeWeight(0, 1); w != 2 {
		t.Fatalf("shared pair weight %d, want 2", w)
	}
}

func TestStarExpand(t *testing.T) {
	nl := build(t)
	g, err := nl.StarExpand()
	if err != nil {
		t.Fatal(err)
	}
	// 4 cells + 1 star for the 3-terminal net.
	if g.N() != 5 {
		t.Fatalf("n=%d", g.N())
	}
	// Edges: a-b direct, star to b,c,d.
	if g.M() != 4 {
		t.Fatalf("m=%d", g.M())
	}
	star := int32(4)
	if g.Degree(star) != 3 {
		t.Fatalf("star degree %d", g.Degree(star))
	}
}

func TestCutNets(t *testing.T) {
	nl := build(t)
	// a,b side 0; c,d side 1: n1 uncut, n2 cut.
	cut, err := nl.CutNets([]uint8{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("cut nets %d, want 1", cut)
	}
	// All same side: nothing cut.
	cut, err = nl.CutNets([]uint8{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Fatalf("cut nets %d, want 0", cut)
	}
	if _, err := nl.CutNets([]uint8{0}); err == nil {
		t.Fatal("short side accepted")
	}
}

func TestParseAndWriteRoundTrip(t *testing.T) {
	in := `# test netlist
cell a 2
cell b 1
cell c 1
net n1 a b
net n2 a b c
`
	nl, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 3 || nl.NumNets() != 2 {
		t.Fatalf("cells=%d nets=%d", nl.NumCells(), nl.NumNets())
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nl2.NumCells() != 3 || nl2.NumNets() != 2 {
		t.Fatal("round trip lost records")
	}
	if nl2.Cells()[0].Area != 2 {
		t.Fatalf("area lost: %d", nl2.Cells()[0].Area)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"cell\n",
		"cell a x\n",
		"cell a 1\ncell a 1\n",
		"net n a b\n",         // unknown cells
		"cell a 1\nnet n a\n", // too few fields
		"bogus record\n",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestSortedCellNames(t *testing.T) {
	nl := New()
	_ = nl.AddCell("z", 1)
	_ = nl.AddCell("a", 1)
	names := nl.SortedCellNames()
	if names[0] != "a" || names[1] != "z" {
		t.Fatalf("names %v", names)
	}
}
