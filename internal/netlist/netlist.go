// Package netlist provides the VLSI substrate that motivates the paper:
// a minimal netlist representation (cells connected by multi-terminal
// nets) and the two standard expansions that turn a netlist into a graph
// for bisection-based placement:
//
//   - clique expansion: each k-terminal net becomes a clique on its
//     cells, each edge weighted so the net contributes weight scaled by
//     2/k (rounded, min 1) per edge — the classical 1/(k−1)-style
//     normalization adapted to integer weights;
//   - star expansion: each net with more than two terminals becomes a
//     new zero-area star vertex connected to its cells.
//
// The text format is line-oriented:
//
//	# comment
//	cell <name> [area]
//	net <name> <cell> <cell> [cell...]
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Netlist is a set of cells and multi-terminal nets over them.
type Netlist struct {
	cells   []Cell
	cellIdx map[string]int32
	nets    []Net
}

// Cell is a placeable component with an area (used as vertex weight).
type Cell struct {
	Name string
	Area int32
}

// Net connects two or more cells.
type Net struct {
	Name  string
	Cells []int32 // indices into the cell table
}

// New returns an empty netlist.
func New() *Netlist {
	return &Netlist{cellIdx: map[string]int32{}}
}

// AddCell registers a cell; duplicate names are rejected. Area must be
// positive (use 1 for unit areas).
func (nl *Netlist) AddCell(name string, area int32) error {
	if name == "" {
		return fmt.Errorf("netlist: empty cell name")
	}
	if area <= 0 {
		return fmt.Errorf("netlist: cell %q has non-positive area %d", name, area)
	}
	if _, dup := nl.cellIdx[name]; dup {
		return fmt.Errorf("netlist: duplicate cell %q", name)
	}
	nl.cellIdx[name] = int32(len(nl.cells))
	nl.cells = append(nl.cells, Cell{Name: name, Area: area})
	return nil
}

// AddNet registers a net over named cells (at least two, all distinct and
// previously added).
func (nl *Netlist) AddNet(name string, cellNames ...string) error {
	if len(cellNames) < 2 {
		return fmt.Errorf("netlist: net %q has %d terminals; need at least 2", name, len(cellNames))
	}
	seen := map[string]bool{}
	idx := make([]int32, 0, len(cellNames))
	for _, cn := range cellNames {
		if seen[cn] {
			return fmt.Errorf("netlist: net %q lists cell %q twice", name, cn)
		}
		seen[cn] = true
		i, ok := nl.cellIdx[cn]
		if !ok {
			return fmt.Errorf("netlist: net %q references unknown cell %q", name, cn)
		}
		idx = append(idx, i)
	}
	nl.nets = append(nl.nets, Net{Name: name, Cells: idx})
	return nil
}

// NumCells returns the cell count.
func (nl *Netlist) NumCells() int { return len(nl.cells) }

// NumNets returns the net count.
func (nl *Netlist) NumNets() int { return len(nl.nets) }

// Cells returns the cell table (caller must not modify).
func (nl *Netlist) Cells() []Cell { return nl.cells }

// Nets returns the net table (caller must not modify).
func (nl *Netlist) Nets() []Net { return nl.nets }

// CellIndex returns the index of the named cell.
func (nl *Netlist) CellIndex(name string) (int32, bool) {
	i, ok := nl.cellIdx[name]
	return i, ok
}

// CliqueExpand converts the netlist into a graph on the cells: each
// k-terminal net adds a clique with per-edge weight max(1, round(2W/k))
// where W is the net weight base (we use W = k/2 scaled: weight 1 for
// 2- and 3-terminal nets, decaying influence for huge nets is capped at
// 1 anyway with integer weights — multiple nets over the same pair sum).
// Vertex weights are cell areas.
func (nl *Netlist) CliqueExpand() (*graph.Graph, error) {
	b := graph.NewBuilder(len(nl.cells))
	for i, c := range nl.cells {
		b.SetVertexWeight(int32(i), c.Area)
	}
	for _, net := range nl.nets {
		k := len(net.Cells)
		// Integer-friendly 2/k normalization with a floor of 1: cliques of
		// small nets get weight 1 per edge; larger nets also 1 (the floor),
		// but each pair appears in as many nets as connect it, summing up.
		w := int32(1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddWeightedEdge(net.Cells[i], net.Cells[j], w)
			}
		}
	}
	return b.Build()
}

// StarExpand converts the netlist into a graph with one extra zero-cost
// (weight-1) star vertex per net of three or more terminals; 2-terminal
// nets become direct edges. Star vertices are appended after the cells.
func (nl *Netlist) StarExpand() (*graph.Graph, error) {
	extra := 0
	for _, net := range nl.nets {
		if len(net.Cells) > 2 {
			extra++
		}
	}
	b := graph.NewBuilder(len(nl.cells) + extra)
	for i, c := range nl.cells {
		b.SetVertexWeight(int32(i), c.Area)
	}
	star := int32(len(nl.cells))
	for _, net := range nl.nets {
		if len(net.Cells) == 2 {
			b.AddEdge(net.Cells[0], net.Cells[1])
			continue
		}
		b.SetVertexWeight(star, 1)
		for _, c := range net.Cells {
			b.AddEdge(star, c)
		}
		star++
	}
	return b.Build()
}

// CutNets counts the nets severed by a side assignment over the cells
// (star vertices, if any, are ignored: a net is cut iff its cells appear
// on both sides). This is the placement-quality metric a VLSI flow
// actually cares about.
func (nl *Netlist) CutNets(side []uint8) (int, error) {
	if len(side) < len(nl.cells) {
		return 0, fmt.Errorf("netlist: side assignment covers %d of %d cells", len(side), len(nl.cells))
	}
	cut := 0
	for _, net := range nl.nets {
		s0 := side[net.Cells[0]]
		for _, c := range net.Cells[1:] {
			if side[c] != s0 {
				cut++
				break
			}
		}
	}
	return cut, nil
}

// Parse reads the text format described in the package comment.
func Parse(r io.Reader) (*Netlist, error) {
	nl := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "cell":
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("netlist: line %d: malformed cell record %q", line, text)
			}
			area := 1
			if len(fields) == 3 {
				var err error
				area, err = strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("netlist: line %d: bad area %q", line, fields[2])
				}
			}
			if err := nl.AddCell(fields[1], int32(area)); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
		case "net":
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: line %d: net needs a name and at least 2 cells", line)
			}
			if err := nl.AddNet(fields[1], fields[2:]...); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nl, nil
}

// Write emits the netlist in the text format.
func Write(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	for _, c := range nl.cells {
		if _, err := fmt.Fprintf(bw, "cell %s %d\n", c.Name, c.Area); err != nil {
			return err
		}
	}
	for _, net := range nl.nets {
		names := make([]string, len(net.Cells))
		for i, c := range net.Cells {
			names[i] = nl.cells[c].Name
		}
		if _, err := fmt.Fprintf(bw, "net %s %s\n", net.Name, strings.Join(names, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SortedCellNames returns cell names in sorted order (for deterministic
// output in tools).
func (nl *Netlist) SortedCellNames() []string {
	names := make([]string, len(nl.cells))
	for i, c := range nl.cells {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}
