package netlist

import (
	"fmt"

	"repro/internal/rng"
)

// RandomOptions parameterizes Random netlist generation.
type RandomOptions struct {
	// Cells is the number of cells (names "c0"…).
	Cells int
	// Nets is the number of nets (names "n0"…).
	Nets int
	// MaxPins bounds the terminals per net (uniform in [2, MaxPins]).
	MaxPins int
	// MaxArea bounds cell areas (uniform in [1, MaxArea]; default 1).
	MaxArea int
	// Locality, in [0,1), biases net pins toward nearby cell indices
	// (Rent-style locality): with probability Locality the next pin is
	// drawn from a window of ±Window around the first pin.
	Locality float64
	// Window is the locality window radius (default Cells/20 + 2).
	Window int
}

// Random generates a synthetic netlist: a standard workload for the
// hypergraph partitioner when no proprietary benchmark decks are
// available. Deterministic given r.
func Random(opts RandomOptions, r *rng.Rand) (*Netlist, error) {
	if opts.Cells < 2 {
		return nil, fmt.Errorf("netlist: Random needs ≥ 2 cells, got %d", opts.Cells)
	}
	if opts.Nets < 0 {
		return nil, fmt.Errorf("netlist: negative net count %d", opts.Nets)
	}
	if opts.MaxPins < 2 {
		opts.MaxPins = 2
	}
	if opts.MaxPins > opts.Cells {
		opts.MaxPins = opts.Cells
	}
	if opts.MaxArea < 1 {
		opts.MaxArea = 1
	}
	if opts.Window <= 0 {
		opts.Window = opts.Cells/20 + 2
	}
	if opts.Locality < 0 || opts.Locality >= 1 {
		return nil, fmt.Errorf("netlist: locality %v outside [0,1)", opts.Locality)
	}
	nl := New()
	for i := 0; i < opts.Cells; i++ {
		area := 1 + r.Intn(opts.MaxArea)
		if err := nl.AddCell(fmt.Sprintf("c%d", i), int32(area)); err != nil {
			return nil, err
		}
	}
	for n := 0; n < opts.Nets; n++ {
		pins := 2 + r.Intn(opts.MaxPins-1)
		anchor := r.Intn(opts.Cells)
		seen := map[int]bool{anchor: true}
		names := []string{fmt.Sprintf("c%d", anchor)}
		for len(names) < pins {
			var cand int
			if r.Float64() < opts.Locality {
				cand = anchor - opts.Window + r.Intn(2*opts.Window+1)
				if cand < 0 {
					cand += opts.Cells
				}
				cand %= opts.Cells
			} else {
				cand = r.Intn(opts.Cells)
			}
			if seen[cand] {
				continue
			}
			seen[cand] = true
			names = append(names, fmt.Sprintf("c%d", cand))
		}
		if err := nl.AddNet(fmt.Sprintf("n%d", n), names...); err != nil {
			return nil, err
		}
	}
	return nl, nil
}
