package trace

import (
	"encoding/csv"
	"io"
	"strconv"
)

// csvHeader is the fixed column order of CSVCurve output — one column
// per Event field, in declaration order.
var csvHeader = []string{
	"type", "algo", "start", "index", "phase", "label",
	"cut", "best_cut", "imbalance", "gain", "max_gain", "moves", "scanned",
	"trials", "accepted", "accept_ratio", "temp",
	"vertices", "edges", "elapsed_ns", "alloc_bytes",
}

// CSVCurve flattens every event into one CSV row — the convergence-curve
// export: filter rows on type=pass_done (KL/FM) or type=temp_done (SA)
// and plot cut or accept_ratio against index to reproduce the curves
// discussed in docs/ALGORITHMS.md.
//
// Like JSONL, output is deterministic for a fixed seed unless Timing is
// set, and the writer is single-goroutine (parallel drivers replay
// through Recorders). Call Flush when done.
type CSVCurve struct {
	// Timing preserves the wall-clock/allocation columns; when false
	// (the default) they are written as 0 so output is reproducible.
	Timing bool

	w           *csv.Writer
	wroteHeader bool
	err         error
}

// NewCSVCurve returns a CSVCurve observer writing to w. The header row
// is written on the first event.
func NewCSVCurve(w io.Writer) *CSVCurve { return &CSVCurve{w: csv.NewWriter(w)} }

// Observe implements Observer. The first write error is retained (see
// Err) and subsequent events are discarded.
func (c *CSVCurve) Observe(e Event) {
	if c.err != nil {
		return
	}
	if !c.wroteHeader {
		if err := c.w.Write(csvHeader); err != nil {
			c.err = err
			return
		}
		c.wroteHeader = true
	}
	if !c.Timing {
		e.ElapsedNS = 0
		e.AllocBytes = 0
	}
	row := []string{
		string(e.Type), e.Algo,
		strconv.Itoa(e.Start), strconv.Itoa(e.Index), e.Phase, e.Label,
		strconv.FormatInt(e.Cut, 10), strconv.FormatInt(e.BestCut, 10),
		strconv.FormatInt(e.Imbalance, 10),
		strconv.FormatInt(e.Gain, 10), strconv.FormatInt(e.MaxGain, 10),
		strconv.Itoa(e.Moves), strconv.FormatInt(e.Scanned, 10),
		strconv.FormatInt(e.Trials, 10), strconv.FormatInt(e.Accepted, 10),
		strconv.FormatFloat(e.AcceptRatio, 'g', -1, 64),
		strconv.FormatFloat(e.Temp, 'g', -1, 64),
		strconv.Itoa(e.Vertices), strconv.Itoa(e.Edges),
		strconv.FormatInt(e.ElapsedNS, 10), strconv.FormatUint(e.AllocBytes, 10),
	}
	if err := c.w.Write(row); err != nil {
		c.err = err
	}
}

// Flush writes buffered rows to the underlying writer and returns the
// first error encountered.
func (c *CSVCurve) Flush() error {
	c.w.Flush()
	if c.err == nil {
		c.err = c.w.Error()
	}
	return c.err
}

// Err returns the first error encountered while writing, if any.
func (c *CSVCurve) Err() error { return c.err }
