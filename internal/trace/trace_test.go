package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func ev(i int) Event {
	return Event{Type: TypePassDone, Algo: "kl", Index: i, Cut: int64(100 - i)}
}

func TestRecorderUnbounded(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 100; i++ {
		r.Observe(ev(i))
	}
	if r.Len() != 100 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 100, 0", r.Len(), r.Dropped())
	}
	events := r.Events()
	for i, e := range events {
		if e.Index != i {
			t.Fatalf("event %d has index %d", i, e.Index)
		}
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.Observe(ev(i))
	}
	if r.Len() != 8 {
		t.Fatalf("len=%d, want 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("dropped=%d, want 12", r.Dropped())
	}
	events := r.Events()
	for i, e := range events {
		if want := 12 + i; e.Index != want {
			t.Fatalf("event %d has index %d, want %d (oldest-first after wrap)", i, e.Index, want)
		}
	}
	// ReplayTo must agree with Events.
	var replayed []Event
	r.ReplayTo(observerFunc(func(e Event) { replayed = append(replayed, e) }))
	if !reflect.DeepEqual(replayed, events) {
		t.Fatal("ReplayTo order differs from Events order")
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

type observerFunc func(Event)

func (f observerFunc) Observe(e Event) { f(e) }

func TestWithStartAndLabel(t *testing.T) {
	var got []Event
	sink := observerFunc(func(e Event) { got = append(got, e) })
	WithStart(sink, 3).Observe(ev(0))
	WithLabel(sink, "b=16").Observe(ev(1))
	pre := ev(2)
	pre.Label = "keep"
	WithLabel(sink, "b=16").Observe(pre)
	if got[0].Start != 3 {
		t.Fatalf("WithStart: start=%d, want 3", got[0].Start)
	}
	if got[1].Label != "b=16" {
		t.Fatalf("WithLabel: label=%q, want b=16", got[1].Label)
	}
	if got[2].Label != "keep" {
		t.Fatalf("WithLabel overwrote an existing label: %q", got[2].Label)
	}
	if WithStart(nil, 1) != nil || WithLabel(nil, "x") != nil {
		t.Fatal("wrapping nil must stay nil (fast-path contract)")
	}
}

func TestMulti(t *testing.T) {
	var a, b []Event
	multi := Multi(nil,
		observerFunc(func(e Event) { a = append(a, e) }),
		nil,
		observerFunc(func(e Event) { b = append(b, e) }))
	multi.Observe(ev(7))
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("fan-out delivered %d/%d events, want 1/1", len(a), len(b))
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of all-nil must be nil")
	}
}

func TestMergeStartsDeterministicOrder(t *testing.T) {
	recs := make([]*Recorder, 3)
	for i := range recs {
		recs[i] = NewRecorder(0)
		for k := 0; k < 2; k++ {
			recs[i].Observe(ev(k))
		}
	}
	var got []Event
	MergeStarts(observerFunc(func(e Event) { got = append(got, e) }), recs)
	if len(got) != 6 {
		t.Fatalf("merged %d events, want 6", len(got))
	}
	for i, e := range got {
		if want := i / 2; e.Start != want {
			t.Fatalf("event %d merged with start %d, want %d", i, e.Start, want)
		}
		if want := i % 2; e.Index != want {
			t.Fatalf("event %d merged with index %d, want %d", i, e.Index, want)
		}
	}
}

func TestJSONLDeterministicAndTimingGated(t *testing.T) {
	e := Event{Type: TypeTempDone, Algo: "sa", Index: 4, Cut: 42, BestCut: 40,
		Trials: 1000, Accepted: 250, AcceptRatio: 0.25, Temp: 1.5,
		ElapsedNS: 12345, AllocBytes: 678}
	var b1, b2 bytes.Buffer
	j1, j2 := NewJSONL(&b1), NewJSONL(&b2)
	j1.Observe(e)
	j2.Observe(e)
	if b1.String() != b2.String() {
		t.Fatal("identical events marshaled differently")
	}
	if strings.Contains(b1.String(), "elapsed_ns") || strings.Contains(b1.String(), "alloc_bytes") {
		t.Fatalf("timing fields leaked into default (deterministic) output: %s", b1.String())
	}
	var timed bytes.Buffer
	jt := NewJSONL(&timed)
	jt.Timing = true
	jt.Observe(e)
	if !strings.Contains(timed.String(), `"elapsed_ns":12345`) {
		t.Fatalf("Timing=true did not preserve elapsed_ns: %s", timed.String())
	}
	// Each line must be standalone JSON round-tripping to the same event.
	var back Event
	if err := json.Unmarshal(timed.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(back, e) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, e)
	}
	if j1.Err() != nil {
		t.Fatalf("unexpected error: %v", j1.Err())
	}
}

func TestCSVCurve(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSVCurve(&buf)
	c.Observe(Event{Type: TypePassDone, Algo: "kl", Index: 0, Cut: 90, BestCut: 90, Gain: 10, Moves: 5, ElapsedNS: 999})
	c.Observe(Event{Type: TypeTempDone, Algo: "sa", Index: 1, Cut: 80, BestCut: 78, Trials: 100, Accepted: 40, AcceptRatio: 0.4, Temp: 2.25})
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "type,algo,start,index") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "pass_done,kl") || strings.Contains(lines[1], "999") {
		t.Fatalf("row 1 wrong or timing leaked: %s", lines[1])
	}
	if !strings.Contains(lines[2], "0.4") || !strings.Contains(lines[2], "2.25") {
		t.Fatalf("row 2 missing float columns: %s", lines[2])
	}
}
