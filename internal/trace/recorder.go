package trace

// Recorder is a ring-buffered in-memory observer. With a positive
// capacity it keeps the most recent events and counts the rest as
// dropped; with capacity ≤ 0 it grows without bound. The zero Recorder
// is an unbounded recorder ready for use.
//
// Recorder is the buffering half of the deterministic-merge story: a
// concurrent driver gives each start its own Recorder and, after all
// goroutines join, replays them in start order (MergeStarts), producing
// an event stream independent of goroutine scheduling.
type Recorder struct {
	capacity int
	buf      []Event
	head     int   // index of the oldest event once the ring has wrapped
	wrapped  bool  // true once len(buf) == capacity and overwriting began
	dropped  int64 // events overwritten (bounded mode only)
}

// NewRecorder returns a Recorder keeping at most capacity events
// (capacity ≤ 0 means unbounded).
func NewRecorder(capacity int) *Recorder {
	r := &Recorder{capacity: capacity}
	if capacity > 0 {
		r.buf = make([]Event, 0, capacity)
	}
	return r
}

// Observe implements Observer.
func (r *Recorder) Observe(e Event) {
	if r.capacity <= 0 {
		r.buf = append(r.buf, e)
		return
	}
	if len(r.buf) < r.capacity {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head++
	if r.head == r.capacity {
		r.head = 0
	}
	r.wrapped = true
	r.dropped++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.buf) }

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Events returns the retained events oldest-first as a fresh slice.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.head:]...)
		out = append(out, r.buf[:r.head]...)
		return out
	}
	return append(out, r.buf...)
}

// Reset discards all retained events and the dropped count.
func (r *Recorder) Reset() {
	r.buf = r.buf[:0]
	r.head = 0
	r.wrapped = false
	r.dropped = 0
}

// ReplayTo forwards the retained events oldest-first to obs. It is a
// no-op when obs is nil.
func (r *Recorder) ReplayTo(obs Observer) {
	if obs == nil {
		return
	}
	if r.wrapped {
		for _, e := range r.buf[r.head:] {
			obs.Observe(e)
		}
		for _, e := range r.buf[:r.head] {
			obs.Observe(e)
		}
		return
	}
	for _, e := range r.buf {
		obs.Observe(e)
	}
}

// MergeStarts replays each recorder's events into obs in slice order,
// rewriting every event's Start field to the recorder's index. Nil
// recorders are skipped. Because the replay happens after the concurrent
// starts have joined and follows the fixed slice order, the merged
// stream is a deterministic function of the recorders' contents — the
// goroutine schedule that filled them cannot show through.
func MergeStarts(obs Observer, recs []*Recorder) {
	if obs == nil {
		return
	}
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		rec.ReplayTo(WithStart(obs, i))
	}
}
