package trace

import (
	"encoding/json"
	"io"
)

// JSONL streams every event as one JSON object per line (JSON Lines).
// Field order follows the Event struct declaration, so — with Timing
// left false — identical seeds produce byte-identical output across
// runs and machines; this is the property the golden-fixture tests and
// the regression-artifact workflow rely on.
//
// JSONL is not safe for concurrent use; parallel drivers buffer into
// per-start Recorders and replay sequentially (see MergeStarts), which
// is also what keeps the output deterministic.
type JSONL struct {
	// Timing, when true, preserves the ElapsedNS/AllocBytes fields.
	// They are wall-clock measurements and differ run to run, so the
	// default (false) zeroes them to keep the stream reproducible.
	Timing bool

	w   io.Writer
	err error
}

// NewJSONL returns a JSONL observer writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Observe implements Observer. The first write error is retained (see
// Err) and subsequent events are discarded.
func (j *JSONL) Observe(e Event) {
	if j.err != nil {
		return
	}
	if !j.Timing {
		e.ElapsedNS = 0
		e.AllocBytes = 0
	}
	line, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = err
	}
}

// Err returns the first error encountered while writing, if any.
func (j *JSONL) Err() error { return j.err }
