// Package trace is the repository's observability layer: a small event
// model that exposes the *dynamics* of the bisection algorithms — KL's
// per-pass convergence, SA's temperature/acceptance decay, FM's move
// prefixes, and the compaction pipeline's level-by-level progress — to
// pluggable observers, without perturbing the algorithms themselves.
//
// The contract has three parts:
//
//   - Zero overhead when absent. Every emitter guards with a nil check
//     (`if obs == nil` — no events, no clock reads, no allocations), so a
//     run without an observer executes exactly the pre-instrumentation
//     code path. The KL/SA benchmarks regress by nothing measurable.
//
//   - Determinism. Observers never touch the algorithms' random streams,
//     so attaching or detaching one cannot change a result. Event streams
//     themselves are deterministic functions of the seed: concurrent
//     drivers (core.ParallelBestOf, harness row parallelism) buffer
//     events per start/row in a Recorder and replay them in index order
//     after joining, so the merged stream is schedule-independent. The
//     only non-deterministic fields are the wall-clock and allocation
//     counters (ElapsedNS, AllocBytes); the serializing observers zero
//     them unless explicitly asked for timing, which is why identical
//     seeds yield byte-identical JSONL.
//
//   - Single-goroutine delivery. An observer attached to one algorithm
//     run is called from one goroutine at a time; parallel drivers give
//     each start its own Recorder and merge afterwards. Observers
//     therefore do not need internal locking.
//
// Concrete observers: Recorder (ring-buffered in-memory), JSONL
// (streaming one JSON object per line), and CSVCurve (a flat table for
// plotting convergence curves). Multi fans out to several observers;
// WithStart and WithLabel stamp events with a start index or a row label
// as they pass through.
//
// The full field-by-field schema is documented in docs/OBSERVABILITY.md.
package trace

// Type discriminates trace events. The values are the JSON/CSV wire
// names; they are stable and may be relied on by external tooling.
type Type string

const (
	// TypeMoveBatch is an intra-pass (KL/FM) or intra-temperature (SA)
	// progress sample, emitted every MoveBatchSize tentative moves (or
	// SAMoveBatchSize trials) plus once for the final partial batch.
	TypeMoveBatch Type = "move_batch"
	// TypePassDone is emitted by KL and FM after each refinement pass.
	TypePassDone Type = "pass_done"
	// TypeTempDone is emitted by SA after each temperature plateau.
	TypeTempDone Type = "temp_done"
	// TypeLevelDone is emitted by the compaction/multilevel pipeline
	// after each coarsening contraction, the coarsest solve, and each
	// uncoarsening projection+refinement.
	TypeLevelDone Type = "level_done"
	// TypeRunDone is emitted once at the end of a refinement run (and by
	// drivers such as BestOf and the harness) with run totals.
	TypeRunDone Type = "run_done"
)

// Event is the single flat record every observer receives. Fields are a
// union over event types; unused fields are zero and (except for the
// always-present core fields) omitted from JSON. See docs/OBSERVABILITY.md
// for which fields each Type populates.
type Event struct {
	// Type is the event discriminator.
	Type Type `json:"type"`
	// Algo identifies the emitter: "kl", "sa", "fm", "coarsen", a
	// composed driver name ("ckl", "kl×2", "kl∥4"), or "harness".
	Algo string `json:"algo"`
	// Start is the index of the enclosing multi-start driver's start
	// (BestOf / ParallelBestOf / harness starts); 0 when there is none.
	// A nested driver overwrites the stamp of its inner runs.
	Start int `json:"start"`
	// Index is the primary ordinal of the event: pass number, temperature
	// step, level number, batch number within the pass/temperature, or —
	// for run_done — the total number of passes/temperatures executed.
	Index int `json:"index"`
	// Phase distinguishes level_done sub-kinds ("coarsen", "initial",
	// "uncoarsen") and marks harness-emitted run_done events ("harness").
	Phase string `json:"phase,omitempty"`
	// Label carries the harness row label (e.g. "b=16") when the event
	// was recorded under a table row; empty otherwise.
	Label string `json:"label,omitempty"`

	// Cut is the current cut after the event; BestCut the best cut seen
	// so far in the enclosing run (for KL/FM passes the two coincide,
	// since a kept prefix never worsens the cut).
	Cut     int64 `json:"cut"`
	BestCut int64 `json:"best_cut"`
	// Imbalance is |w(V0) − w(V1)| after the event (SA states and FM
	// mid-pass states may be unbalanced).
	Imbalance int64 `json:"imbalance,omitempty"`

	// Gain is the cumulative kept gain: for pass_done the pass's cut
	// improvement, for move_batch the running tentative-prefix gain, for
	// run_done the whole run's improvement.
	Gain int64 `json:"gain,omitempty"`
	// MaxGain is the largest single pair/move gain observed in the batch
	// or pass.
	MaxGain int64 `json:"max_gain,omitempty"`
	// Moves counts kept pair-swaps (KL), kept single moves (FM), or
	// tentative moves so far within a pass (move_batch).
	Moves int `json:"moves,omitempty"`
	// Scanned counts candidate pairs examined by KL's selection scan.
	Scanned int64 `json:"scanned,omitempty"`

	// Trials and Accepted count SA proposals and acceptances in the
	// temperature (temp_done), batch (move_batch), or run (run_done);
	// AcceptRatio = Accepted/Trials; Temp is the temperature they ran at.
	Trials      int64   `json:"trials,omitempty"`
	Accepted    int64   `json:"accepted,omitempty"`
	AcceptRatio float64 `json:"accept_ratio,omitempty"`
	Temp        float64 `json:"temp,omitempty"`

	// Vertices and Edges describe the graph at a coarsening level.
	Vertices int `json:"vertices,omitempty"`
	Edges    int `json:"edges,omitempty"`

	// ElapsedNS is the wall-clock nanoseconds of the pass, temperature,
	// level, or run; AllocBytes the heap bytes allocated (populated only
	// by cmd/bisect's final run_done). Both are non-deterministic across
	// runs and are zeroed by JSONL/CSVCurve unless Timing is set.
	ElapsedNS  int64  `json:"elapsed_ns,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// MoveBatchSize is the KL/FM move_batch granularity: one event per this
// many tentative moves within a pass.
const MoveBatchSize = 64

// SAMoveBatchSize is the SA move_batch granularity: one event per this
// many trials within a temperature.
const SAMoveBatchSize = 4096

// Observer receives trace events. Implementations are called from a
// single goroutine per attached run (see the package comment) and must
// not mutate shared algorithm state; they may retain copies of events.
//
// A nil Observer means "no tracing": every emitter in the repository
// checks for nil before doing any event-related work, including clock
// reads, so the nil path is byte-for-byte the uninstrumented algorithm.
type Observer interface {
	Observe(e Event)
}

// startObserver stamps a start index onto events as they pass through.
type startObserver struct {
	obs   Observer
	start int
}

func (s startObserver) Observe(e Event) {
	e.Start = s.start
	s.obs.Observe(e)
}

// WithStart returns an observer that rewrites every event's Start field
// to start before forwarding to obs. Multi-start drivers use it to label
// sequential starts; returns nil if obs is nil so the fast path survives
// wrapping.
func WithStart(obs Observer, start int) Observer {
	if obs == nil {
		return nil
	}
	return startObserver{obs: obs, start: start}
}

// labelObserver stamps a row label onto events as they pass through.
type labelObserver struct {
	obs   Observer
	label string
}

func (l labelObserver) Observe(e Event) {
	if e.Label == "" {
		e.Label = l.label
	}
	l.obs.Observe(e)
}

// WithLabel returns an observer that sets every unlabeled event's Label
// field to label before forwarding to obs. The harness uses it to stamp
// table-row labels; returns nil if obs is nil.
func WithLabel(obs Observer, label string) Observer {
	if obs == nil {
		return nil
	}
	return labelObserver{obs: obs, label: label}
}

// multiObserver fans events out to several observers in order.
type multiObserver []Observer

func (m multiObserver) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi returns an observer that forwards every event to each non-nil
// argument in order. With zero non-nil arguments it returns nil, so
// Multi(nil, nil) composes cleanly with the nil fast path.
func Multi(obs ...Observer) Observer {
	out := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
