package graph

import (
	"testing"

	"repro/internal/rng"
)

func gridGraph(t *testing.T, rows, cols int) *Graph {
	t.Helper()
	b := NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			if c+1 < cols {
				b.AddEdge(v, v+1)
			}
			if r+1 < rows {
				b.AddEdge(v, v+int32(cols))
			}
		}
	}
	return b.MustBuild()
}

func TestInducedPreservesWeights(t *testing.T) {
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 7)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.SetVertexWeight(1, 5)
	g := b.MustBuild()
	sub, m, err := Induced(g, []int32{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("n=%d m=%d", sub.N(), sub.M())
	}
	// New id 0 = old 1 (weight 5); edge {old 0, old 1} weight 7 = {new 2, new 0}.
	if sub.VertexWeight(0) != 5 {
		t.Fatalf("weight %d", sub.VertexWeight(0))
	}
	if sub.EdgeWeight(0, 2) != 7 {
		t.Fatalf("edge weight %d", sub.EdgeWeight(0, 2))
	}
	if m[0] != 1 || m[1] != 2 || m[2] != 0 {
		t.Fatalf("mapping %v", m)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedEmptySelection(t *testing.T) {
	g := gridGraph(t, 2, 2)
	sub, m, err := Induced(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 0 || len(m) != 0 {
		t.Fatal("empty selection not empty")
	}
}

func TestInducedErrors(t *testing.T) {
	g := gridGraph(t, 2, 2)
	if _, _, err := Induced(g, []int32{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, _, err := Induced(g, []int32{-1}); err == nil {
		t.Fatal("negative accepted")
	}
	if _, _, err := Induced(g, []int32{4}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	g := gridGraph(t, 3, 3)
	r := rng.NewFib(4)
	perm := make([]int32, g.N())
	inv := make([]int32, g.N())
	for i, v := range r.Perm(g.N()) {
		perm[i] = int32(v)
		inv[v] = int32(i)
	}
	pg, err := Permute(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Permute(pg, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("permute round trip changed the graph")
	}
}

func TestPermutePreservesWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 9)
	b.SetVertexWeight(2, 4)
	g := b.MustBuild()
	pg, err := Permute(g, []int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pg.EdgeWeight(2, 0) != 9 {
		t.Fatalf("edge weight lost")
	}
	if pg.VertexWeight(1) != 4 {
		t.Fatalf("vertex weight lost")
	}
}

func TestPermuteErrors(t *testing.T) {
	g := gridGraph(t, 2, 2)
	if _, err := Permute(g, []int32{0, 1}); err == nil {
		t.Fatal("short perm accepted")
	}
	if _, err := Permute(g, []int32{0, 1, 2, 2}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := Permute(g, []int32{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestUnionPreservesStructure(t *testing.T) {
	a := gridGraph(t, 2, 2)
	bld := NewBuilder(2)
	bld.AddWeightedEdge(0, 1, 3)
	bld.SetVertexWeight(0, 7)
	b := bld.MustBuild()
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 6 || u.M() != a.M()+1 {
		t.Fatalf("n=%d m=%d", u.N(), u.M())
	}
	if u.EdgeWeight(4, 5) != 3 {
		t.Fatal("shifted edge weight lost")
	}
	if u.VertexWeight(4) != 7 {
		t.Fatal("shifted vertex weight lost")
	}
	if _, comps := u.Components(); comps != 2 {
		t.Fatalf("components %d", comps)
	}
}

func TestUnionWithEmpty(t *testing.T) {
	a := gridGraph(t, 2, 2)
	e := NewBuilder(0).MustBuild()
	u, err := Union(a, e)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(a, u) {
		t.Fatal("union with empty changed the graph")
	}
}
