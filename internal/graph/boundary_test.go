package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBuilderAtVertexCap exercises Builder exactly at MaxVertices and
// one past it: the cap must reject before any O(n) allocation, and a
// graph at exactly the cap must build and serve its accessors. The
// at-cap build allocates a few GB transiently — that is the point: the
// 2²⁷ ceiling is a supported configuration, not a theoretical one.
func TestBuilderAtVertexCap(t *testing.T) {
	if _, err := NewBuilder(MaxVertices + 1).Build(); err == nil {
		t.Fatal("Builder accepted MaxVertices+1 vertices")
	} else if !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("unexpected over-cap error: %v", err)
	}

	if testing.Short() {
		t.Skip("at-cap build allocates several GB")
	}
	b := NewBuilder(MaxVertices)
	b.AddEdge(0, MaxVertices-1)
	b.AddEdge(MaxVertices-1, MaxVertices-2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build at MaxVertices: %v", err)
	}
	if g.N() != MaxVertices || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want n=%d m=2", g.N(), g.M(), MaxVertices)
	}
	if d := g.Degree(MaxVertices - 1); d != 2 {
		t.Fatalf("degree of top vertex = %d, want 2", d)
	}
}

// bcsrHeader builds a 72-byte BCSR header with the given vertex count,
// edge count, and flags — enough to drive parseCSRInto's validation
// order without materializing a body.
func bcsrHeader(n, m, flags uint64) []byte {
	hdr := make([]byte, csrHeaderSize)
	copy(hdr[0:8], csrMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], n)
	binary.LittleEndian.PutUint64(hdr[16:24], m)
	binary.LittleEndian.PutUint64(hdr[24:32], flags)
	return hdr
}

// TestBCSRHeaderAtVertexCap pins the BCSR header validation at the cap
// boundary: MaxVertices+1 is refused by the cap check itself, while
// exactly MaxVertices passes the cap and fails later on the (absent)
// body — proving the boundary sits between the two.
func TestBCSRHeaderAtVertexCap(t *testing.T) {
	_, err := ReadCSRFile(bytes.NewReader(bcsrHeader(MaxVertices+1, 0, 0)))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("n=MaxVertices+1: got %v, want vertex-cap error", err)
	}
	_, err = ReadCSRFile(bytes.NewReader(bcsrHeader(MaxVertices, 0, 0)))
	if err == nil {
		t.Fatal("header-only image accepted")
	}
	if strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("n=MaxVertices rejected by the cap check: %v", err)
	}
	if !strings.Contains(err.Error(), "size") {
		t.Fatalf("n=MaxVertices: got %v, want size-mismatch error", err)
	}
}

// TestBCSRCompactOffsetOverflow pins the int32-offset guard: a header
// declaring compact offsets for an edge count whose half-edges exceed
// 2³¹−1 must be refused outright (such graphs may only ship wide), and
// the same count with the wide flag must get past that check to the
// size validation.
func TestBCSRCompactOffsetOverflow(t *testing.T) {
	const m = 1 << 30 // 2·m half-edges = 2³¹ > maxCompactHalfEdges
	_, err := ReadCSRFile(bytes.NewReader(bcsrHeader(1<<20, m, 0)))
	if err == nil || !strings.Contains(err.Error(), "compact") {
		t.Fatalf("compact flags with %d half-edges: got %v, want compact-offset refusal", uint64(2*m), err)
	}
	_, err = ReadCSRFile(bytes.NewReader(bcsrHeader(1<<20, m, csrFlagWide)))
	if err == nil {
		t.Fatal("header-only wide image accepted")
	}
	if strings.Contains(err.Error(), "compact") {
		t.Fatalf("wide flag still hit the compact-offset check: %v", err)
	}
}

// validBCSRImage returns the serialized bytes of a small valid graph —
// the mutation base for corruption tests and fuzz seeds.
func validBCSRImage(tb testing.TB) []byte {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSRFile(&buf, g); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// flipBit returns a copy of data with one bit flipped.
func flipBit(data []byte, byteIdx, bit int) []byte {
	out := append([]byte(nil), data...)
	out[byteIdx] ^= 1 << bit
	return out
}

// FuzzReadBCSR drives the BCSR reader with hostile images. Seeds cover
// the validation boundaries this PR touches: the vertex cap, an edge
// count that overflows int32 offsets (must be forced onto the wide-CSR
// path or refused), truncations, and mid-section single-bit flips in a
// valid image — corruptions that pass the header checks and must be
// caught by the structural sweep. Any rejection must carry
// ErrCorruptBCSR; any acceptance must yield a Validate-clean graph.
func FuzzReadBCSR(f *testing.F) {
	valid := validBCSRImage(f)
	f.Add(valid)
	f.Add(valid[:csrHeaderSize])
	f.Add(bcsrHeader(MaxVertices, 2, 0))
	f.Add(bcsrHeader(MaxVertices+1, 2, 0))
	f.Add(bcsrHeader(1<<20, 1<<30, 0))           // int32 offset overflow, compact
	f.Add(bcsrHeader(1<<20, 1<<30, csrFlagWide)) // int32 offset overflow, wide
	f.Add(bcsrHeader(1<<62, 1<<62, csrFlagVW))
	// Mid-section bit flips past the header: offsets, edges, wdeg. The
	// header (size, counts, flags) still validates; the body sweep must
	// reject. Also truncations that keep a plausible header.
	for _, idx := range []int{csrHeaderSize + 1, csrHeaderSize + 16, len(valid) - 9, len(valid) - 1} {
		f.Add(flipBit(valid, idx, 0))
		f.Add(flipBit(valid, idx, 7))
	}
	f.Add(valid[:len(valid)-8])
	f.Add(valid[:len(valid)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSRFile(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptBCSR) {
				t.Fatalf("BCSR rejection not typed ErrCorruptBCSR: %v", err)
			}
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("BCSR reader accepted invalid graph: %v", verr)
		}
	})
}

// TestBCSRCorruptionTyped holds both loaders — the copying ReadCSRFile
// and the mmap OpenCSRFile — to the same contract on damaged images:
// a typed ErrCorruptBCSR, never a panic, never silent acceptance. The
// mutations are single-bit flips in every section of a valid image plus
// truncations that keep the header intact.
func TestBCSRCorruptionTyped(t *testing.T) {
	valid := validBCSRImage(t)
	type mutation struct {
		name string
		data []byte
	}
	muts := []mutation{
		{"offset-flip", flipBit(valid, csrHeaderSize+1, 3)},
		// Bit 2 pushes a neighbor id in [0,4) out of range — a low-bit flip
		// could instead yield an asymmetric-but-consistent image, which the
		// sweep documents as the writer's contract (Validate's job).
		{"edge-head-flip", flipBit(valid, csrHeaderSize+5*8, 2)},
		{"wdeg-flip", flipBit(valid, len(valid)-5, 2)},
		{"tail-truncated", valid[:len(valid)-8]},
		{"ragged-truncated", valid[:len(valid)-3]},
		{"header-aggregate-flip", flipBit(valid, 33, 0)}, // total edge weight
	}
	dir := t.TempDir()
	for _, mut := range muts {
		t.Run(mut.name, func(t *testing.T) {
			// Copying loader.
			if g, err := ReadCSRFile(bytes.NewReader(mut.data)); err == nil {
				// A flip can land in padding or dead bytes; acceptance is then
				// only legal if the graph is fully valid.
				if verr := g.Validate(); verr != nil {
					t.Fatalf("ReadCSRFile accepted corrupt image: %v", verr)
				}
				t.Skip("mutation landed in dead bytes")
			} else if !errors.Is(err, ErrCorruptBCSR) {
				t.Fatalf("ReadCSRFile error not typed: %v", err)
			}
			// Mmap loader, through a real file.
			path := filepath.Join(dir, mut.name+".bcsr")
			if err := os.WriteFile(path, mut.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenCSRFile(path); err == nil {
				t.Fatal("OpenCSRFile accepted an image ReadCSRFile refused")
			} else if !errors.Is(err, ErrCorruptBCSR) {
				t.Fatalf("OpenCSRFile error not typed: %v", err)
			}
		})
	}
}
