package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic and must only return graphs
// that pass Validate. Run with `go test -fuzz FuzzReadEdgeList` for a
// fuzzing session; under plain `go test` the seed corpus acts as a unit
// test.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("graph 3 2\ne 0 1\ne 1 2\n")
	f.Add("graph 2 1 vweights\nv 0 5\nv 1 2\ne 0 1 7\n")
	f.Add("# comment\n\ngraph 0 0\n")
	f.Add("graph 1 0\n")
	f.Add("e 0 1\n")
	f.Add("graph -1 0\n")
	f.Add("graph 99999999999999999999 0\n")
	f.Add("graph 2 1\ne 0 1\ne 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid graph: %v\ninput: %q", verr, in)
		}
		// Round trip must succeed and agree.
		var buf bytes.Buffer
		if werr := WriteEdgeList(&buf, g); werr != nil {
			t.Fatalf("write-back failed: %v", werr)
		}
		g2, rerr := ReadEdgeList(&buf)
		if rerr != nil {
			t.Fatalf("round trip parse failed: %v", rerr)
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("round trip changed the graph for %q", in)
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	f.Add("3 2\n2\n1 3\n2\n")
	f.Add("2 1 1\n2 5\n1 5\n")
	f.Add("2 1 11 1\n1 2 3\n1 1 3\n")
	f.Add("% comment\n1 0\n\n")
	f.Add("0 0\n")
	f.Add("x y\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("METIS parser accepted invalid graph: %v\ninput: %q", verr, in)
		}
	})
}

func FuzzUnmarshalGraph(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1,1],[1,2,2]]}`)
	f.Add(`{"n":2,"vertexWeights":[3,4],"edges":[[0,1,1]]}`)
	f.Add(`{}`)
	f.Add(`{"n":-5}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, in string) {
		g, err := UnmarshalGraph([]byte(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("JSON parser accepted invalid graph: %v\ninput: %q", verr, in)
		}
	})
}
