package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic and must only return graphs
// that pass Validate. Run with `go test -fuzz FuzzReadEdgeList` for a
// fuzzing session; under plain `go test` the seed corpus acts as a unit
// test.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("graph 3 2\ne 0 1\ne 1 2\n")
	f.Add("graph 2 1 vweights\nv 0 5\nv 1 2\ne 0 1 7\n")
	f.Add("# comment\n\ngraph 0 0\n")
	f.Add("graph 1 0\n")
	f.Add("e 0 1\n")
	f.Add("graph -1 0\n")
	f.Add("graph 99999999999999999999 0\n")
	f.Add("graph 2 1\ne 0 1\ne 0 1\n")
	// Truncated records and hostile headers: oversized or negative
	// counts, ids that would wrap when narrowed to int32, and a header
	// with the body cut off mid-record.
	f.Add("graph 3")
	f.Add("graph 3 2\ne 0")
	f.Add("graph 3 2\ne 0 1\ne 1")
	f.Add("graph 2 -1\n")
	f.Add("graph 2 999999999999\n")
	f.Add("graph 134217729 0\n") // MaxVertices+1
	f.Add("graph 2 1\ne 4294967296 1\n")
	f.Add("graph 2 1\ne 0 1 4294967297\n")
	f.Add("graph 2 1 vweights\nv 0 4294967298\ne 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid graph: %v\ninput: %q", verr, in)
		}
		// Round trip must succeed and agree.
		var buf bytes.Buffer
		if werr := WriteEdgeList(&buf, g); werr != nil {
			t.Fatalf("write-back failed: %v", werr)
		}
		g2, rerr := ReadEdgeList(&buf)
		if rerr != nil {
			t.Fatalf("round trip parse failed: %v", rerr)
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("round trip changed the graph for %q", in)
		}
	})
}

// FuzzCSREquivalence cross-checks every CSR-served accessor against a
// naive map model built from the same edge multiset: whatever sequence
// of (possibly duplicate) weighted edges the Builder accepts, the CSR
// layout must report exactly the merged adjacency — same neighbor sets,
// same weights via EdgeWeight's binary search, same degree summaries.
func FuzzCSREquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 0, 1, 0, 9, 1, 2, 1, 0, 1, 2}) // duplicate edge {0,1}
	f.Add([]byte{60, 0, 59, 200, 59, 0, 100})
	f.Add([]byte{3, 0, 0, 1, 1, 1, 0}) // self-loop (rejected) then valid
	f.Fuzz(func(t *testing.T, in []byte) {
		n := 2
		if len(in) > 0 {
			n = 2 + int(in[0])%60
			in = in[1:]
		}
		b := NewBuilder(n)
		model := map[[2]int32]int64{}
		for len(in) >= 3 {
			u := int32(int(in[0]) % n)
			v := int32(int(in[1]) % n)
			w := int32(in[2])%16 + 1
			in = in[3:]
			b.AddWeightedEdge(u, v, w)
			if u != v {
				if u > v {
					u, v = v, u
				}
				model[[2]int32{u, v}] += int64(w)
			} else {
				return // Builder rejects self-loops; nothing to compare
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("Build rejected a valid edge sequence: %v", err)
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("built graph fails Validate: %v", verr)
		}
		if g.M() != len(model) {
			t.Fatalf("M() = %d, model has %d merged edges", g.M(), len(model))
		}
		var totalW, maxWDeg int64
		maxDeg := 0
		for u := int32(0); int(u) < n; u++ {
			var wdeg int64
			deg := 0
			prev := int32(-1)
			for _, e := range g.Neighbors(u) {
				if e.To <= prev {
					t.Fatalf("Neighbors(%d) not strictly sorted by To", u)
				}
				prev = e.To
				key := [2]int32{u, e.To}
				if u > e.To {
					key = [2]int32{e.To, u}
				}
				if model[key] != int64(e.W) {
					t.Fatalf("edge {%d,%d}: CSR weight %d, model %d", u, e.To, e.W, model[key])
				}
				wdeg += int64(e.W)
				deg++
			}
			if g.Degree(u) != deg || g.WeightedDegree(u) != wdeg {
				t.Fatalf("vertex %d: Degree/WeightedDegree (%d,%d) != recomputed (%d,%d)",
					u, g.Degree(u), g.WeightedDegree(u), deg, wdeg)
			}
			if wdeg > maxWDeg {
				maxWDeg = wdeg
			}
			if deg > maxDeg {
				maxDeg = deg
			}
			totalW += wdeg
			// EdgeWeight must agree with the model for every pair,
			// including absent ones (n ≤ 62 keeps this quadratic check
			// cheap), and regardless of probe direction.
			for v := int32(0); int(v) < n; v++ {
				if u == v {
					continue
				}
				key := [2]int32{u, v}
				if u > v {
					key = [2]int32{v, u}
				}
				if got := int64(g.EdgeWeight(u, v)); got != model[key] {
					t.Fatalf("EdgeWeight(%d,%d) = %d, model %d", u, v, got, model[key])
				}
				if g.HasEdge(u, v) != (model[key] != 0) {
					t.Fatalf("HasEdge(%d,%d) disagrees with model", u, v)
				}
			}
		}
		if g.MaxWeightedDegree() != maxWDeg || g.MaxDegree() != maxDeg {
			t.Fatalf("cached max degrees (%d,%d) != recomputed (%d,%d)",
				g.MaxWeightedDegree(), g.MaxDegree(), maxWDeg, maxDeg)
		}
		if g.TotalEdgeWeight() != totalW/2 {
			t.Fatalf("TotalEdgeWeight %d != recomputed %d", g.TotalEdgeWeight(), totalW/2)
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	f.Add("3 2\n2\n1 3\n2\n")
	f.Add("2 1 1\n2 5\n1 5\n")
	f.Add("2 1 11 1\n1 2 3\n1 1 3\n")
	f.Add("% comment\n1 0\n\n")
	f.Add("0 0\n")
	f.Add("x y\n")
	// Truncated bodies and hostile headers: negative/oversized counts,
	// neighbor ids past n or past int32, missing edge weights.
	f.Add("3")
	f.Add("3 2\n2\n1")
	f.Add("2 -1\n")
	f.Add("2 999999999999\n")
	f.Add("134217729 0\n") // MaxVertices+1
	f.Add("3 1\n4294967298\n")
	f.Add("3 1\n9\n")
	f.Add("2 1 1\n2\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("METIS parser accepted invalid graph: %v\ninput: %q", verr, in)
		}
	})
}

func FuzzUnmarshalGraph(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1,1],[1,2,2]]}`)
	f.Add(`{"n":2,"vertexWeights":[3,4],"edges":[[0,1,1]]}`)
	f.Add(`{}`)
	f.Add(`{"n":-5}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"n":134217729}`) // MaxVertices+1: must be rejected, not allocated
	f.Add(`{"n":3,"edges":[[0,4294967296,1]]}`)
	f.Add(`{"n":3,"edges":[[0,1`)
	f.Fuzz(func(t *testing.T, in string) {
		g, err := UnmarshalGraph([]byte(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("JSON parser accepted invalid graph: %v\ninput: %q", verr, in)
		}
	})
}
