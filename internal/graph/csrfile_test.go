package graph_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// equalGraphs compares two graphs through the public accessors — the
// same surface the algorithms consume.
func equalGraphs(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("%s: size mismatch: (%d,%d) vs (%d,%d)", name, a.N(), a.M(), b.N(), b.M())
	}
	if a.TotalEdgeWeight() != b.TotalEdgeWeight() || a.TotalVertexWeight() != b.TotalVertexWeight() ||
		a.MaxDegree() != b.MaxDegree() || a.MaxWeightedDegree() != b.MaxWeightedDegree() ||
		a.MaxVertexWeight() != b.MaxVertexWeight() {
		t.Fatalf("%s: aggregate mismatch", name)
	}
	for v := int32(0); int(v) < a.N(); v++ {
		if a.Degree(v) != b.Degree(v) || a.WeightedDegree(v) != b.WeightedDegree(v) || a.VertexWeight(v) != b.VertexWeight(v) {
			t.Fatalf("%s: per-vertex mismatch at %d", name, v)
		}
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("%s: neighbor count mismatch at %d", name, v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("%s: neighbors of %d differ at slot %d", name, v, i)
			}
		}
	}
}

// roundTrip writes g to a BCSR file and loads it back via both loaders,
// checking each against the original.
func roundTrip(t *testing.T, name string, g *graph.Graph) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSRFile(f, g); err != nil {
		t.Fatalf("%s: WriteCSRFile: %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := graph.OpenCSRFile(path)
	if err != nil {
		t.Fatalf("%s: OpenCSRFile: %v", name, err)
	}
	mg := c.Graph()
	if err := mg.Validate(); err != nil {
		t.Fatalf("%s: mapped graph invalid: %v", name, err)
	}
	equalGraphs(t, name+"/mmap", g, mg)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := graph.ReadCSRFile(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("%s: ReadCSRFile: %v", name, err)
	}
	if err := rg.Validate(); err != nil {
		t.Fatalf("%s: read graph invalid: %v", name, err)
	}
	equalGraphs(t, name+"/read", g, rg)

	if err := c.Close(); err != nil {
		t.Fatalf("%s: Close: %v", name, err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("%s: second Close: %v", name, err)
	}
}

// TestCSRFileRoundTripGenerators exercises the BCSR writer and both
// loaders on every generator family from the paper's test suite.
func TestCSRFileRoundTripGenerators(t *testing.T) {
	families := []struct {
		name string
		make func(t *testing.T) *graph.Graph
	}{
		{"gnp", func(t *testing.T) *graph.Graph {
			g, err := gen.GNP(200, 0.05, rng.NewFib(1))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"twoset", func(t *testing.T) *graph.Graph {
			g, err := gen.TwoSet(200, 0.08, 0.02, 40, rng.NewFib(2))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"breg", func(t *testing.T) *graph.Graph {
			g, err := gen.BReg(400, 8, 4, rng.NewFib(3))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"regular", func(t *testing.T) *graph.Graph {
			g, err := gen.RandomRegular(150, 5, rng.NewFib(4))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			roundTrip(t, fam.name, fam.make(t))
		})
	}
}

// TestCSRFileRoundTripVariants covers the representation corners the
// generator families don't hit: weighted vertices and edges, the wide
// (int64-offset) form, tiny graphs, and an isolated vertex.
func TestCSRFileRoundTripVariants(t *testing.T) {
	weighted := func() *graph.Graph {
		b := graph.NewBuilder(6)
		b.AddWeightedEdge(0, 1, 3)
		b.AddWeightedEdge(1, 2, 7)
		b.AddWeightedEdge(2, 3, 1)
		b.AddWeightedEdge(3, 4, 9)
		b.AddWeightedEdge(4, 0, 2)
		b.SetVertexWeight(0, 5)
		b.SetVertexWeight(3, 11)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	t.Run("weighted", func(t *testing.T) { roundTrip(t, "weighted", weighted()) })
	t.Run("wide", func(t *testing.T) {
		defer func(v bool) { graph.DisableCompactCSR = v }(graph.DisableCompactCSR)
		graph.DisableCompactCSR = true
		g := weighted()
		if g.Compact() {
			t.Fatal("expected wide representation under DisableCompactCSR")
		}
		roundTrip(t, "wide", g)
	})
	t.Run("tiny", func(t *testing.T) {
		b := graph.NewBuilder(2)
		b.AddEdge(0, 1)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, "tiny", g)
	})
	t.Run("isolated", func(t *testing.T) {
		b := graph.NewBuilder(4)
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, "isolated", g)
	})
}

// TestCSRFileRejectsCorruption feeds OpenCSRFile damaged images and
// requires every one to be rejected: the loader serves graphs straight
// out of untrusted bytes, so the validation sweep is the only thing
// standing between a forged file and a garbage partition.
func TestCSRFileRejectsCorruption(t *testing.T) {
	g, err := gen.GNP(60, 0.1, rng.NewFib(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteCSRFile(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	openBytes := func(t *testing.T, img []byte) error {
		t.Helper()
		path := filepath.Join(t.TempDir(), "bad.csr")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := graph.OpenCSRFile(path)
		if err == nil {
			c.Close()
		}
		return err
	}

	// Sanity: the pristine image loads.
	if err := openBytes(t, good); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	mutate := func(pos int, val byte) []byte {
		img := append([]byte(nil), good...)
		img[pos] = val
		return img
	}
	cases := []struct {
		name string
		img  []byte
	}{
		{"empty", nil},
		{"truncated-header", good[:40]},
		{"truncated-body", good[:len(good)-8]},
		{"trailing-garbage", append(append([]byte(nil), good...), 0, 0, 0, 0, 0, 0, 0, 0)},
		{"bad-magic", mutate(0, 'X')},
		{"bad-flags", mutate(24, 0xFF)},
		{"wrong-n", mutate(8, good[8]+1)},
		{"wrong-ew", mutate(32, good[32]+1)},
		{"wrong-maxdeg", mutate(48, good[48]+1)},
		{"wrong-wdeg", mutate(len(good)-4, good[len(good)-4]+1)},
	}
	// Corrupt the first edge's head vertex: breaks sortedness, range,
	// or the wdeg cross-check depending on the value.
	edgeStart := 72 + ((int(60)+1)*4+7)&^7
	cases = append(cases,
		struct {
			name string
			img  []byte
		}{"corrupt-edge", mutate(edgeStart, good[edgeStart]^0x80)},
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := openBytes(t, tc.img); err == nil {
				t.Fatal("corrupted image accepted")
			}
		})
	}

	// ReadCSRFile applies the same validation.
	if _, err := graph.ReadCSRFile(bytes.NewReader(good[:40])); err == nil {
		t.Fatal("ReadCSRFile accepted a truncated image")
	}
	if _, err := graph.ReadCSRFile(strings.NewReader("not a BCSR file at all")); err == nil {
		t.Fatal("ReadCSRFile accepted garbage")
	}
}
