package graph

import "fmt"

// This file provides direct CSR construction, bypassing the Builder's
// sort-and-merge machinery for callers that already know their edge
// multiset is clean:
//
//   - FromCSR is the public validated entry point: generators that can
//     lay out half-edges with a degree-count prepass (internal/gen) hand
//     the arrays over and pay one validation sweep instead of the
//     Builder's triple-slice accumulation, index sort, merge pass, and
//     per-row sort.Slice closures.
//   - ResetCSR is the trusted in-place entry point: the contraction
//     kernel in internal/coarsen rebuilds the same Graph value level
//     after level from workspace-owned buffers, so steady-state
//     compaction performs no graph allocations at all.
//
// Both produce Graphs indistinguishable from Builder output: the same
// CSR layout (rows strictly sorted by head vertex) and the same cached
// aggregates, which the equivalence tests in csr_test.go pin down.

// SortEdges sorts a half-edge list in place by head vertex without
// allocating: insertion sort for the short rows that dominate the
// paper's sparse instances, heapsort above that so adversarial degrees
// stay O(d log d). Direct CSR constructors use it to establish the
// by-To row order EdgeWeight's binary search relies on.
func SortEdges(a []Edge) {
	if len(a) <= 32 {
		for i := 1; i < len(a); i++ {
			e := a[i]
			j := i - 1
			for j >= 0 && a[j].To > e.To {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = e
		}
		return
	}
	// Heapsort: sift-down max-heap, then repeated extraction.
	for i := len(a)/2 - 1; i >= 0; i-- {
		siftDownEdges(a, i, len(a))
	}
	for end := len(a) - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownEdges(a, 0, end)
	}
}

func siftDownEdges(a []Edge, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1].To > a[child].To {
			child++
		}
		if a[root].To >= a[child].To {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// FromCSR constructs a Graph directly from CSR arrays: off has N()+1
// entries with v's half-edges in edges[off[v]:off[v+1]], and vw holds
// per-vertex weights (nil for unit weights). Rows need not be sorted —
// FromCSR sorts them in place — but the edge multiset must already
// describe a simple symmetric weighted graph: every {u,v} present as
// exactly one half-edge in each endpoint's row with equal positive
// weight, no self-loops, no duplicates. All of that is validated; the
// one thing FromCSR never does is merge, which is why it can skip the
// Builder's sort-and-merge entirely.
//
// The slices are adopted, not copied: the caller must not retain them.
func FromCSR(off []int32, edges []Edge, vw []int32) (*Graph, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("graph: FromCSR needs at least one offset entry")
	}
	n := len(off) - 1
	if n > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds limit %d", n, MaxVertices)
	}
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR offsets start at %d, not 0", off[0])
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: FromCSR offsets decrease at vertex %d", v)
		}
	}
	if int(off[n]) != len(edges) {
		return nil, fmt.Errorf("graph: FromCSR offsets cover %d half-edges, got %d", off[n], len(edges))
	}
	for v := 0; v < n; v++ {
		SortEdges(edges[off[v]:off[v+1]])
	}
	g := &Graph{}
	if DisableCompactCSR {
		// Ablation: widen the offsets and land on the int64
		// representation; everything else (validation, aggregates,
		// results) is identical.
		if err := g.resetCSR64(widenOffsets(off), edges, vw); err != nil {
			return nil, err
		}
		return g, checkSymmetry(g)
	}
	if err := g.ResetCSR(off, edges, vw); err != nil {
		return nil, err
	}
	// ResetCSR proved each row simple and clean; symmetry is the one
	// cross-row invariant left. Checking every half-edge's mirror covers
	// both missing and weight-mismatched reverse entries.
	return g, checkSymmetry(g)
}

// ResetCSR re-initializes g in place from CSR arrays whose rows are
// already strictly sorted by head vertex, recomputing every cached
// aggregate. It is the trusted counterpart of FromCSR for hot paths
// that construct provably-symmetric CSR (the contraction kernel): only
// the per-row invariants — sortedness (which subsumes duplicate
// detection), head range, no self-loops, positive weights — are
// checked, fused into the aggregate sweep; adjacency symmetry is the
// caller's contract.
//
// The slices are adopted, not copied. The only allocation is growing
// the cached weighted-degree array when the vertex count exceeds any
// previous ResetCSR on this Graph value, so workspace-owned Graphs
// reach a zero-allocation steady state.
func (g *Graph) ResetCSR(off []int32, edges []Edge, vw []int32) error {
	if len(off) == 0 {
		return fmt.Errorf("graph: ResetCSR needs at least one offset entry")
	}
	n := len(off) - 1
	if n > MaxVertices {
		return fmt.Errorf("graph: vertex count %d exceeds limit %d", n, MaxVertices)
	}
	if off[0] != 0 {
		return fmt.Errorf("graph: ResetCSR offsets start at %d, not 0", off[0])
	}
	if int(off[n]) != len(edges) {
		return fmt.Errorf("graph: ResetCSR offsets cover %d half-edges, got %d", off[n], len(edges))
	}
	if vw != nil && len(vw) != n {
		return fmt.Errorf("graph: ResetCSR vertex weights have %d entries for %d vertices", len(vw), n)
	}
	if cap(g.wdeg) < n {
		g.wdeg = make([]int64, n)
	} else {
		g.wdeg = g.wdeg[:n]
	}
	var (
		m       int
		ew      int64
		maxDeg  int
		maxWDeg int64
	)
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		if hi < lo {
			return fmt.Errorf("graph: ResetCSR offsets decrease at vertex %d", v)
		}
		if d := int(hi - lo); d > maxDeg {
			maxDeg = d
		}
		var wd int64
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.To < 0 || int(e.To) >= n {
				return fmt.Errorf("graph: vertex %d has neighbor %d out of range [0,%d)", v, e.To, n)
			}
			if int(e.To) == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if e.To <= prev {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at %d", v, e.To)
			}
			if e.W <= 0 {
				return fmt.Errorf("graph: non-positive weight %d on edge {%d,%d}", e.W, v, e.To)
			}
			prev = e.To
			wd += int64(e.W)
			if int(e.To) > v {
				m++
				ew += int64(e.W)
			}
		}
		g.wdeg[v] = wd
		if wd > maxWDeg {
			maxWDeg = wd
		}
	}
	if 2*m != len(edges) {
		return fmt.Errorf("graph: ResetCSR half-edge count %d is not twice the %d forward edges (asymmetric input)", len(edges), m)
	}
	var vwUp int64
	var maxVW int32 = 1
	if vw != nil {
		for v, w := range vw {
			if w <= 0 {
				return fmt.Errorf("graph: non-positive vertex weight %d at vertex %d", w, v)
			}
			vwUp += int64(w)
			if w > maxVW {
				maxVW = w
			}
		}
	} else {
		vwUp = int64(n)
	}
	g.n = n
	g.off = off
	g.off64 = nil
	g.edges = edges
	g.vw = vw
	g.m = m
	g.ew = ew
	g.vwUp = vwUp
	g.maxDeg = maxDeg
	g.maxWDeg = maxWDeg
	g.maxVW = maxVW
	return nil
}
