package graph

import "fmt"

// Induced returns the subgraph induced by the given vertices (which must
// be distinct and in range) together with the mapping from new to old
// vertex ids. Vertex weights are preserved; edges with both endpoints in
// the set are kept with their weights.
func Induced(g *Graph, vertices []int32) (*Graph, []int32, error) {
	oldToNew := make(map[int32]int32, len(vertices))
	newToOld := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= g.N() {
			return nil, nil, fmt.Errorf("graph: Induced vertex %d out of range [0,%d)", v, g.N())
		}
		if _, dup := oldToNew[v]; dup {
			return nil, nil, fmt.Errorf("graph: Induced duplicate vertex %d", v)
		}
		oldToNew[v] = int32(i)
		newToOld[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		if g.Weighted() {
			b.SetVertexWeight(int32(i), g.VertexWeight(v))
		}
		for _, e := range g.Neighbors(v) {
			if u, ok := oldToNew[e.To]; ok && u > int32(i) {
				b.AddWeightedEdge(int32(i), u, e.W)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, newToOld, nil
}

// Permute returns a copy of g with vertices relabeled by perm: new id
// perm[v] corresponds to old vertex v. perm must be a permutation of
// [0, N).
func Permute(g *Graph, perm []int32) (*Graph, error) {
	if len(perm) != g.N() {
		return nil, fmt.Errorf("graph: Permute with %d entries for %d vertices", len(perm), g.N())
	}
	seen := make([]bool, g.N())
	for _, p := range perm {
		if p < 0 || int(p) >= g.N() || seen[p] {
			return nil, fmt.Errorf("graph: Permute argument is not a permutation")
		}
		seen[p] = true
	}
	b := NewBuilder(g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		if g.Weighted() {
			b.SetVertexWeight(perm[v], g.VertexWeight(v))
		}
	}
	g.Edges(func(u, v, w int32) {
		b.AddWeightedEdge(perm[u], perm[v], w)
	})
	return b.Build()
}

// Union returns the disjoint union of a and b: b's vertices are shifted
// by a.N().
func Union(a, b *Graph) (*Graph, error) {
	nb := NewBuilder(a.N() + b.N())
	weighted := a.Weighted() || b.Weighted()
	if weighted {
		for v := int32(0); int(v) < a.N(); v++ {
			nb.SetVertexWeight(v, a.VertexWeight(v))
		}
		for v := int32(0); int(v) < b.N(); v++ {
			nb.SetVertexWeight(int32(a.N())+v, b.VertexWeight(v))
		}
	}
	a.Edges(func(u, v, w int32) { nb.AddWeightedEdge(u, v, w) })
	off := int32(a.N())
	b.Edges(func(u, v, w int32) { nb.AddWeightedEdge(off+u, off+v, w) })
	return nb.Build()
}
