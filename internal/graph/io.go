package graph

// Serialization. Three formats are supported:
//
//   - the repository's native edge-list format (WriteEdgeList /
//     ReadEdgeList), a plain-text format with a header line;
//   - a METIS-compatible adjacency format (WriteMETIS / ReadMETIS),
//     because downstream partitioning tools speak it;
//   - JSON (MarshalJSON / UnmarshalJSON via GraphJSON), for tooling.
//
// Native format:
//
//	# optional comment lines
//	graph <n> <m> [vweights]
//	[v <vertex> <weight>]...   (only when vweights present)
//	e <u> <v> [w]              (m lines; w defaults to 1; 0-based ids)

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MaxEdges bounds the edge count a parser will accept from a header
// before reading the body, so hostile headers fail fast. 2²⁹ ≈ 537M
// edges keeps the text parsers usable up to MaxVertices-sized sparse
// instances (mean degree ~8 at 2²⁷ vertices); anything denser at that
// scale should ship as BCSR, whose own plausibility cap is separate.
const MaxEdges = 1 << 29

// parseID parses a vertex id (or any value that must fit in int32)
// without silent truncation: values outside [0, int32 max] — including
// 64-bit values that would wrap into range when converted — are errors.
func parseID(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > math.MaxInt32 {
		return 0, fmt.Errorf("value %d out of range", v)
	}
	return int32(v), nil
}

// WriteEdgeList writes g in the native edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	flag := ""
	if g.Weighted() {
		flag = " vweights"
	}
	if _, err := fmt.Fprintf(bw, "graph %d %d%s\n", g.N(), g.M(), flag); err != nil {
		return err
	}
	if g.Weighted() {
		for v := int32(0); int(v) < g.N(); v++ {
			if _, err := fmt.Fprintf(bw, "v %d %d\n", v, g.VertexWeight(v)); err != nil {
				return err
			}
		}
	}
	var werr error
	g.Edges(func(u, v, w int32) {
		if werr != nil {
			return
		}
		if w == 1 {
			_, werr = fmt.Fprintf(bw, "e %d %d\n", u, v)
		} else {
			_, werr = fmt.Fprintf(bw, "e %d %d %d\n", u, v, w)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses the native edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	var b *Builder
	declaredM := -1
	seenM := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "graph":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count: %v", line, err)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge count: %v", line, err)
			}
			if m < 0 || m > MaxEdges {
				return nil, fmt.Errorf("graph: line %d: edge count %d out of range [0,%d]", line, m, MaxEdges)
			}
			declaredM = m
			b = NewBuilder(n)
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: vertex record before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex record %q", line, text)
			}
			v, err1 := parseID(fields[1])
			w, err2 := parseID(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed vertex record %q", line, text)
			}
			b.SetVertexWeight(v, w)
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge record before header", line)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed edge record %q", line, text)
			}
			u, err1 := parseID(fields[1])
			v, err2 := parseID(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed edge record %q", line, text)
			}
			w := int32(1)
			if len(fields) == 4 {
				var err error
				w, err = parseID(fields[3])
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: malformed edge weight %q", line, fields[3])
				}
			}
			b.AddWeightedEdge(u, v, w)
			seenM++
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing header line")
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if declaredM >= 0 && g.M() != declaredM {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d (after merging %d records)", declaredM, g.M(), seenM)
	}
	return g, nil
}

// WriteMETIS writes g in the METIS adjacency format: a header line
// "n m [fmt]" followed by one line per vertex listing 1-based neighbor
// ids (and edge weights, when any weight differs from 1).
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hasEW := false
	g.Edges(func(_, _, w int32) {
		if w != 1 {
			hasEW = true
		}
	})
	hasVW := g.Weighted()
	fmtCode := ""
	switch {
	case hasVW && hasEW:
		fmtCode = " 11"
	case hasVW:
		fmtCode = " 10"
	case hasEW:
		fmtCode = " 1"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.N(), g.M(), fmtCode); err != nil {
		return err
	}
	for v := int32(0); int(v) < g.N(); v++ {
		var sb strings.Builder
		if hasVW {
			fmt.Fprintf(&sb, "%d", g.VertexWeight(v))
		}
		for _, e := range g.Neighbors(v) {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", e.To+1)
			if hasEW {
				fmt.Fprintf(&sb, " %d", e.W)
			}
		}
		if _, err := fmt.Fprintln(bw, sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses the METIS adjacency format (fmt codes 0, 1, 10, 11;
// ncon>1 is not supported).
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	hasVW, hasEW := false, false
	n, v := 0, int32(0)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "%") {
			continue
		}
		if text == "" && b == nil {
			continue // blank lines before the header are ignorable
		}
		// A blank line after the header is a vertex with no neighbors.
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: malformed METIS header %q", text)
			}
			var err error
			n, err = strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: bad METIS vertex count: %v", err)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: bad METIS edge count: %v", err)
			}
			if m < 0 || m > MaxEdges {
				return nil, fmt.Errorf("graph: METIS edge count %d out of range [0,%d]", m, MaxEdges)
			}
			if len(fields) >= 3 {
				switch fields[2] {
				case "0", "00", "000":
				case "1", "01", "001":
					hasEW = true
				case "10", "010":
					hasVW = true
				case "11", "011":
					hasVW, hasEW = true, true
				default:
					return nil, fmt.Errorf("graph: unsupported METIS fmt %q", fields[2])
				}
			}
			if len(fields) >= 4 && fields[3] != "1" {
				return nil, fmt.Errorf("graph: unsupported METIS ncon %q", fields[3])
			}
			b = NewBuilder(n)
			continue
		}
		if int(v) >= n {
			return nil, fmt.Errorf("graph: METIS file has more than %d vertex lines", n)
		}
		i := 0
		if hasVW {
			if len(fields) == 0 {
				return nil, fmt.Errorf("graph: METIS vertex %d missing weight", v)
			}
			w, err := parseID(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: METIS vertex %d bad weight: %v", v, err)
			}
			b.SetVertexWeight(v, w)
			i = 1
		}
		for ; i < len(fields); i++ {
			u, err := parseID(fields[i])
			if err != nil || u < 1 || int(u) > n {
				return nil, fmt.Errorf("graph: METIS vertex %d bad neighbor %q", v, fields[i])
			}
			w := int32(1)
			if hasEW {
				i++
				if i >= len(fields) {
					return nil, fmt.Errorf("graph: METIS vertex %d neighbor %d missing edge weight", v, u)
				}
				w, err = parseID(fields[i])
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d bad edge weight %q", v, fields[i])
				}
			}
			// Each edge appears twice; record it once.
			if u-1 > v {
				b.AddWeightedEdge(v, u-1, w)
			}
		}
		v++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty METIS input")
	}
	return b.Build()
}

// GraphJSON is the JSON wire representation of a Graph.
type GraphJSON struct {
	N             int        `json:"n"`
	VertexWeights []int32    `json:"vertexWeights,omitempty"`
	Edges         [][3]int32 `json:"edges"` // [u, v, w]
}

// ToJSON converts g to its JSON representation.
func ToJSON(g *Graph) *GraphJSON {
	j := &GraphJSON{N: g.N()}
	if g.Weighted() {
		j.VertexWeights = make([]int32, g.N())
		for v := int32(0); int(v) < g.N(); v++ {
			j.VertexWeights[v] = g.VertexWeight(v)
		}
	}
	g.Edges(func(u, v, w int32) {
		j.Edges = append(j.Edges, [3]int32{u, v, w})
	})
	return j
}

// FromJSON reconstructs a Graph from its JSON representation.
func FromJSON(j *GraphJSON) (*Graph, error) {
	b := NewBuilder(j.N)
	for v, w := range j.VertexWeights {
		b.SetVertexWeight(int32(v), w)
	}
	for _, e := range j.Edges {
		b.AddWeightedEdge(e[0], e[1], e[2])
	}
	return b.Build()
}

// MarshalGraph encodes g as JSON bytes.
func MarshalGraph(g *Graph) ([]byte, error) { return json.Marshal(ToJSON(g)) }

// UnmarshalGraph decodes JSON bytes produced by MarshalGraph.
func UnmarshalGraph(data []byte) (*Graph, error) {
	var j GraphJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	return FromJSON(&j)
}
