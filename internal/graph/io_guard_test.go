package graph

import (
	"strings"
	"testing"
)

// Hostile headers and wrapping ids must be rejected with an error — in
// particular, 64-bit values that would silently wrap into range when
// narrowed to int32 (e.g. 2³² + 1 → 1) must never parse into a
// structurally valid but wrong graph.
func TestReadEdgeListRejectsHostileInput(t *testing.T) {
	for _, in := range []string{
		"graph 2 -1\n",
		"graph 2 999999999999\ne 0 1\n",
		"graph 134217729 0\n", // MaxVertices+1
		"graph 2 1\ne 4294967297 1\n", // wraps to vertex 1
		"graph 2 1\ne 0 4294967297\n",
		"graph 2 1\ne 0 1 4294967297\n", // wraps to weight 1
		"graph 2 1 vweights\nv 0 4294967298\ne 0 1\n",
		"graph 3 2\ne 0 1\ne 1\n", // truncated edge record
	} {
		if g, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList accepted %q (n=%d m=%d)", in, g.N(), g.M())
		}
	}
}

func TestReadMETISRejectsHostileInput(t *testing.T) {
	for _, in := range []string{
		"2 -1\n",
		"2 999999999999\n",
		"134217729 0\n", // MaxVertices+1
		"3 1\n4294967298\n", // wraps to neighbor 2
		"3 1\n9\n",          // neighbor past n
		"2 1 1\n2\n",        // fmt declares edge weights, none present
		"2 x\n",
	} {
		if g, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMETIS accepted %q (n=%d m=%d)", in, g.N(), g.M())
		}
	}
}
