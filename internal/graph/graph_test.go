package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// path builds a path graph 0-1-2-...-(n-1).
func path(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cycleGraph builds a cycle on n >= 3 vertices.
func cycleGraph(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

// complete builds K_n.
func complete(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.MustBuild()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should be connected by convention")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("empty graph AvgDegree = %v", g.AvgDegree())
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := NewBuilder(5).MustBuild()
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.IsConnected() {
		t.Fatal("5 isolated vertices should not be connected")
	}
	if got := len(g.ComponentSizes()); got != 5 {
		t.Fatalf("want 5 components, got %d", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderBasics(t *testing.T) {
	g := path(t, 4)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("path4: n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("missing edge {0,1}")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected edge {0,2}")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.TotalEdgeWeight() != 3 {
		t.Fatalf("total edge weight %d", g.TotalEdgeWeight())
	}
	if g.TotalVertexWeight() != 4 {
		t.Fatalf("total vertex weight %d", g.TotalVertexWeight())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 0, 3) // same undirected edge, reversed
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if g.M() != 2 {
		t.Fatalf("want 2 edges after merging, got %d", g.M())
	}
	if w := g.EdgeWeight(0, 1); w != 5 {
		t.Fatalf("merged weight = %d, want 5", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop not rejected")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge not rejected")
	}
	b2 := NewBuilder(2)
	b2.AddEdge(-1, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("negative vertex not rejected")
	}
}

func TestBuilderRejectsNonPositiveWeights(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("zero edge weight not rejected")
	}
	b2 := NewBuilder(2)
	b2.SetVertexWeight(0, -1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("negative vertex weight not rejected")
	}
}

func TestBuilderNegativeN(t *testing.T) {
	if _, err := NewBuilder(-1).Build(); err == nil {
		t.Fatal("negative vertex count not rejected")
	}
}

func TestVertexWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.SetVertexWeight(0, 5)
	g := b.MustBuild()
	if !g.Weighted() {
		t.Fatal("graph should report weighted vertices")
	}
	if g.VertexWeight(0) != 5 || g.VertexWeight(1) != 1 || g.VertexWeight(2) != 1 {
		t.Fatalf("weights: %d %d %d", g.VertexWeight(0), g.VertexWeight(1), g.VertexWeight(2))
	}
	if g.TotalVertexWeight() != 7 {
		t.Fatalf("total vertex weight %d, want 7", g.TotalVertexWeight())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := complete(t, 5)
	count := 0
	g.Edges(func(u, v, w int32) {
		if u >= v {
			t.Fatalf("Edges yielded u=%d >= v=%d", u, v)
		}
		if w != 1 {
			t.Fatalf("unit graph yielded weight %d", w)
		}
		count++
	})
	if count != 10 {
		t.Fatalf("K5 has 10 edges, iterated %d", count)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := path(t, 5)
	c := g.Clone()
	// Mutate the clone's adjacency in place; original must not change.
	c.edges[0].W = 99
	if g.edges[0].W == 99 {
		t.Fatal("Clone shares adjacency storage")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.MustBuild()
	id, count := g.Components()
	if count != 4 {
		t.Fatalf("want 4 components, got %d", count)
	}
	if id[0] != id[1] || id[1] != id[2] {
		t.Fatal("vertices 0,1,2 should share a component")
	}
	if id[3] != id[4] {
		t.Fatal("vertices 3,4 should share a component")
	}
	if id[5] == id[6] || id[5] == id[0] {
		t.Fatal("isolated vertices must have distinct components")
	}
	sizes := g.ComponentSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Fatalf("component sizes sum to %d, want 7", total)
	}
}

func TestBFSOnPath(t *testing.T) {
	g := path(t, 6)
	d := g.BFS(0)
	for i := 0; i < 6; i++ {
		if d[i] != int32(i) {
			t.Fatalf("BFS dist to %d = %d, want %d", i, d[i], i)
		}
	}
	if ecc := g.Eccentricity(0); ecc != 5 {
		t.Fatalf("eccentricity of path end = %d, want 5", ecc)
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	d := g.BFS(0)
	if d[2] != -1 {
		t.Fatalf("unreachable vertex distance %d, want -1", d[2])
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(t, 5) // degrees: 1,2,2,2,1
	h := g.DegreeHistogram()
	want := []int{0, 2, 3}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
}

func TestIsRegular(t *testing.T) {
	if !cycleGraph(t, 8).IsRegular(2) {
		t.Fatal("cycle should be 2-regular")
	}
	if path(t, 4).IsRegular(2) {
		t.Fatal("path is not 2-regular")
	}
	if !complete(t, 5).IsRegular(4) {
		t.Fatal("K5 should be 4-regular")
	}
}

func TestCountTriangles(t *testing.T) {
	if got := complete(t, 4).CountTriangles(); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	if got := complete(t, 5).CountTriangles(); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
	if got := cycleGraph(t, 6).CountTriangles(); got != 0 {
		t.Fatalf("C6 triangles = %d, want 0", got)
	}
	if got := cycleGraph(t, 3).CountTriangles(); got != 1 {
		t.Fatalf("C3 triangles = %d, want 1", got)
	}
}

func TestWeightedDegree(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 4)
	b.AddWeightedEdge(0, 2, 3)
	g := b.MustBuild()
	if got := g.WeightedDegree(0); got != 7 {
		t.Fatalf("weighted degree = %d, want 7", got)
	}
}

func TestMaxDegree(t *testing.T) {
	if got := NewBuilder(0).MustBuild().MaxDegree(); got != 0 {
		t.Fatalf("empty MaxDegree = %d", got)
	}
	if got := complete(t, 6).MaxDegree(); got != 5 {
		t.Fatalf("K6 MaxDegree = %d", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := path(t, 3)
	// Corrupt the cached edge count.
	g.m++
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed corrupted edge count")
	}
	g.m--
	// Corrupt symmetry (the reverse half-edge keeps the old weight, and
	// the cached weighted degree no longer matches either).
	g.edges[0].W = 9
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric weights")
	}
}

func TestStringSummary(t *testing.T) {
	s := path(t, 4).String()
	if s == "" {
		t.Fatal("String returned empty summary")
	}
}

// randomGraph builds a random simple graph for property tests.
func randomGraph(r *rng.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for k := 0; k < m; k++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		b.AddWeightedEdge(u, v, int32(1+r.Intn(5)))
	}
	return b.MustBuild()
}

func TestPropertyRandomGraphsValidate(t *testing.T) {
	r := rng.NewFib(100)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(60)
		m := r.Intn(3 * n)
		g := randomGraph(r, n, m)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyHandshake(t *testing.T) {
	// Sum of degrees equals twice the edge count on random graphs.
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 + r.Intn(40)
		g := randomGraph(r, n, r.Intn(2*n))
		sum := 0
		for v := int32(0); int(v) < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEdgeWeightSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewFib(seed)
		n := 2 + r.Intn(30)
		g := randomGraph(r, n, r.Intn(3*n))
		for u := int32(0); int(u) < g.N(); u++ {
			for v := int32(0); int(v) < g.N(); v++ {
				if g.EdgeWeight(u, v) != g.EdgeWeight(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
