package graph

import (
	"testing"
)

// csrFromBuilder lays out the Builder-built graph's adjacency as raw
// CSR arrays (copied), for round-tripping through FromCSR.
func csrFromBuilder(t *testing.T, g *Graph) (off []int32, edges []Edge, vw []int32) {
	t.Helper()
	off = make([]int32, g.N()+1)
	for v := 0; v <= g.N(); v++ {
		off[v] = g.off[v]
	}
	edges = append([]Edge(nil), g.edges...)
	if g.vw != nil {
		vw = append([]int32(nil), g.vw...)
	}
	return off, edges, vw
}

func buildSample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(2, 3, 7)
	b.AddWeightedEdge(0, 3, 2)
	b.AddWeightedEdge(1, 4, 5)
	b.SetVertexWeight(2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFromCSRMatchesBuilder: FromCSR on a Builder-produced layout
// reconstructs an identical graph, including every cached aggregate.
func TestFromCSRMatchesBuilder(t *testing.T) {
	want := buildSample(t)
	g, err := FromCSR(csrFromBuilder(t, want))
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(want, g) {
		t.Fatal("FromCSR graph differs from Builder graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != want.M() || g.TotalEdgeWeight() != want.TotalEdgeWeight() ||
		g.MaxDegree() != want.MaxDegree() || g.MaxWeightedDegree() != want.MaxWeightedDegree() ||
		g.TotalVertexWeight() != want.TotalVertexWeight() || g.MaxVertexWeight() != want.MaxVertexWeight() {
		t.Fatal("FromCSR cached aggregates differ from Builder's")
	}
}

// TestFromCSRSortsRows: rows may arrive in any order; FromCSR sorts
// them in place, including rows long enough to hit the heapsort path.
func TestFromCSRSortsRows(t *testing.T) {
	const n = 40 // star graph: hub row has 39 entries, above the insertion cutoff
	off := make([]int32, n+1)
	edges := make([]Edge, 0, 2*(n-1))
	off[0] = 0
	for v := n - 1; v >= 1; v-- { // hub row descending
		edges = append(edges, Edge{To: int32(v), W: int32(v)})
	}
	off[1] = int32(len(edges))
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{To: 0, W: int32(v)})
		off[v+1] = int32(len(edges))
	}
	g, err := FromCSR(off, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := int32(-1)
	for _, e := range g.Neighbors(0) {
		if e.To <= prev {
			t.Fatal("hub row not sorted")
		}
		if e.W != e.To {
			t.Fatalf("edge {0,%d} weight %d, want %d", e.To, e.W, e.To)
		}
		prev = e.To
	}
}

// TestFromCSRRejects: each invariant violation is caught.
func TestFromCSRRejects(t *testing.T) {
	cases := []struct {
		name  string
		off   []int32
		edges []Edge
		vw    []int32
	}{
		{name: "empty offsets"},
		{name: "offsets start nonzero", off: []int32{1, 1}},
		{name: "offsets decrease", off: []int32{0, 2, 1, 2}, edges: make([]Edge, 2)},
		{name: "offsets miss edge count", off: []int32{0, 1}, edges: nil},
		{name: "neighbor out of range", off: []int32{0, 1, 2}, edges: []Edge{{To: 5, W: 1}, {To: 0, W: 1}}},
		{name: "self loop", off: []int32{0, 1, 2}, edges: []Edge{{To: 0, W: 1}, {To: 1, W: 1}}},
		{name: "duplicate edge", off: []int32{0, 2, 4},
			edges: []Edge{{To: 1, W: 1}, {To: 1, W: 1}, {To: 0, W: 1}, {To: 0, W: 1}}},
		{name: "non-positive weight", off: []int32{0, 1, 2}, edges: []Edge{{To: 1, W: 0}, {To: 0, W: 0}}},
		{name: "asymmetric missing reverse", off: []int32{0, 1, 1, 2},
			edges: []Edge{{To: 1, W: 1}, {To: 0, W: 1}}},
		{name: "asymmetric weight mismatch", off: []int32{0, 1, 2},
			edges: []Edge{{To: 1, W: 1}, {To: 0, W: 2}}},
		{name: "bad vertex weight count", off: []int32{0, 0, 0}, vw: []int32{1}},
		{name: "non-positive vertex weight", off: []int32{0, 0}, vw: []int32{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromCSR(tc.off, tc.edges, tc.vw); err == nil {
				t.Fatal("FromCSR accepted invalid input")
			}
		})
	}
}

// TestFromCSREmpty: the empty and edgeless graphs round-trip.
func TestFromCSREmpty(t *testing.T) {
	g, err := FromCSR([]int32{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph got N=%d M=%d", g.N(), g.M())
	}
	g, err = FromCSR([]int32{0, 0, 0, 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 0 || g.TotalVertexWeight() != 3 {
		t.Fatalf("edgeless graph got N=%d M=%d vw=%d", g.N(), g.M(), g.TotalVertexWeight())
	}
}

// TestResetCSRReuse: a Graph value re-initialized in place serves a
// sequence of different graphs correctly, growing only its cached
// weighted-degree array — and after the first sizing, reuses with no
// allocations at all.
func TestResetCSRReuse(t *testing.T) {
	want := buildSample(t)
	off, edges, vw := csrFromBuilder(t, want)
	var g Graph
	if err := g.ResetCSR(off, edges, vw); err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(want, &g) {
		t.Fatal("ResetCSR graph differs from Builder graph")
	}
	// Shrink to a triangle in place, then back.
	tri := NewBuilder(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	wantTri, err := tri.Build()
	if err != nil {
		t.Fatal(err)
	}
	toff, tedges, _ := csrFromBuilder(t, wantTri)
	if err := g.ResetCSR(toff, tedges, nil); err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(wantTri, &g) {
		t.Fatal("ResetCSR shrink differs")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := g.ResetCSR(off, edges, vw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm ResetCSR allocates %v times per run, want 0", allocs)
	}
}

// TestResetCSRRejectsUnsorted: the trusted path still rejects rows that
// are not strictly sorted (the duplicate-subsuming check).
func TestResetCSRRejectsUnsorted(t *testing.T) {
	var g Graph
	err := g.ResetCSR([]int32{0, 2, 3, 4},
		[]Edge{{To: 2, W: 1}, {To: 1, W: 1}, {To: 0, W: 1}, {To: 0, W: 1}}, nil)
	if err == nil {
		t.Fatal("ResetCSR accepted an unsorted row")
	}
}
