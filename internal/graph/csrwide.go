package graph

import "fmt"

// This file holds the wide (int64-offset) CSR representation's
// constructors and the knob that selects between the two forms.
//
// The compact form (int32 offsets) is the default and the fast path:
// half the offset memory, twice the offsets per cache line. It covers
// every graph with fewer than 2³¹ half-edges — all of the paper's
// instances and everything up to hundreds of millions of edges. The
// wide form exists so the same accessors keep working beyond that, and
// as the reference representation the compact one is fuzz-checked
// against (FuzzCompactCSREquivalence).

// maxCompactHalfEdges is the largest half-edge count the compact
// (int32-offset) representation can index.
const maxCompactHalfEdges = 1<<31 - 1

// DisableCompactCSR forces every graph subsequently constructed through
// Builder.Build or FromCSR onto the wide (int64-offset) representation.
// Results are identical either way — the accessors hide the offset
// width — only memory layout and cache behavior differ. This is an
// ablation/testing knob in the spirit of coarsen.DisableDirectCSR; it
// is read at construction time and must not be flipped concurrently
// with graph building. The contraction kernel's trusted ResetCSR path
// is unaffected: coarse graphs are strictly smaller than their fine
// graph and always fit the compact form.
var DisableCompactCSR bool

// FromCSR64 is FromCSR for wide (int64) offset arrays: the same
// validation, sorting, and adoption contract, producing a graph on the
// wide representation regardless of whether the half-edges would fit
// the compact one. Use it to hold the wide form fixed in equivalence
// tests; ordinary construction goes through Builder or FromCSR, which
// pick the representation automatically.
func FromCSR64(off []int64, edges []Edge, vw []int32) (*Graph, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("graph: FromCSR64 needs at least one offset entry")
	}
	n := len(off) - 1
	if n > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds limit %d", n, MaxVertices)
	}
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR64 offsets start at %d, not 0", off[0])
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: FromCSR64 offsets decrease at vertex %d", v)
		}
	}
	if off[n] != int64(len(edges)) {
		return nil, fmt.Errorf("graph: FromCSR64 offsets cover %d half-edges, got %d", off[n], len(edges))
	}
	for v := 0; v < n; v++ {
		SortEdges(edges[off[v]:off[v+1]])
	}
	g := &Graph{}
	if err := g.resetCSR64(off, edges, vw); err != nil {
		return nil, err
	}
	return g, checkSymmetry(g)
}

// checkSymmetry verifies the one cross-row invariant the per-row sweeps
// cannot: every half-edge's mirror exists with equal weight.
func checkSymmetry(g *Graph) error {
	for u := int32(0); int(u) < g.n; u++ {
		for _, e := range g.Neighbors(u) {
			if w := g.EdgeWeight(e.To, u); w != e.W {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}: %d vs %d", u, e.To, e.W, w)
			}
		}
	}
	return nil
}

// resetCSR64 is ResetCSR on the wide representation: per-row structural
// validation (sortedness, head range, no self-loops, positive weights)
// fused into the aggregate sweep, adopting the arrays without copying.
// Adjacency symmetry is the caller's contract, exactly as in ResetCSR.
func (g *Graph) resetCSR64(off []int64, edges []Edge, vw []int32) error {
	if len(off) == 0 {
		return fmt.Errorf("graph: resetCSR64 needs at least one offset entry")
	}
	n := len(off) - 1
	if n > MaxVertices {
		return fmt.Errorf("graph: vertex count %d exceeds limit %d", n, MaxVertices)
	}
	if off[0] != 0 {
		return fmt.Errorf("graph: resetCSR64 offsets start at %d, not 0", off[0])
	}
	if off[n] != int64(len(edges)) {
		return fmt.Errorf("graph: resetCSR64 offsets cover %d half-edges, got %d", off[n], len(edges))
	}
	if vw != nil && len(vw) != n {
		return fmt.Errorf("graph: resetCSR64 vertex weights have %d entries for %d vertices", len(vw), n)
	}
	if cap(g.wdeg) < n {
		g.wdeg = make([]int64, n)
	} else {
		g.wdeg = g.wdeg[:n]
	}
	var (
		m       int
		ew      int64
		maxDeg  int
		maxWDeg int64
	)
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		if hi < lo {
			return fmt.Errorf("graph: resetCSR64 offsets decrease at vertex %d", v)
		}
		if d := int(hi - lo); d > maxDeg {
			maxDeg = d
		}
		var wd int64
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.To < 0 || int(e.To) >= n {
				return fmt.Errorf("graph: vertex %d has neighbor %d out of range [0,%d)", v, e.To, n)
			}
			if int(e.To) == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if e.To <= prev {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at %d", v, e.To)
			}
			if e.W <= 0 {
				return fmt.Errorf("graph: non-positive weight %d on edge {%d,%d}", e.W, v, e.To)
			}
			prev = e.To
			wd += int64(e.W)
			if int(e.To) > v {
				m++
				ew += int64(e.W)
			}
		}
		g.wdeg[v] = wd
		if wd > maxWDeg {
			maxWDeg = wd
		}
	}
	if 2*m != len(edges) {
		return fmt.Errorf("graph: resetCSR64 half-edge count %d is not twice the %d forward edges (asymmetric input)", len(edges), m)
	}
	var vwUp int64
	var maxVW int32 = 1
	if vw != nil {
		for v, w := range vw {
			if w <= 0 {
				return fmt.Errorf("graph: non-positive vertex weight %d at vertex %d", w, v)
			}
			vwUp += int64(w)
			if w > maxVW {
				maxVW = w
			}
		}
	} else {
		vwUp = int64(n)
	}
	g.n = n
	g.off = nil
	g.off64 = off
	g.edges = edges
	g.vw = vw
	g.m = m
	g.ew = ew
	g.vwUp = vwUp
	g.maxDeg = maxDeg
	g.maxWDeg = maxWDeg
	g.maxVW = maxVW
	return nil
}

// widenOffsets converts compact offsets to wide ones; used by FromCSR
// when DisableCompactCSR routes construction onto the wide form.
func widenOffsets(off []int32) []int64 {
	out := make([]int64, len(off))
	for i, o := range off {
		out[i] = int64(o)
	}
	return out
}
