package graph

// This file provides structural queries used by the experiment harness and
// by tests: connected components, BFS distances, degree histograms, and
// eccentricity-style summaries.

// Components returns a component id for every vertex (ids are dense,
// 0..k-1 in order of first discovery) and the number of components.
func (g *Graph) Components() (id []int32, count int) {
	id = make([]int32, g.N())
	for i := range id {
		id[i] = -1
	}
	queue := make([]int32, 0, g.N())
	for s := int32(0); int(s) < g.N(); s++ {
		if id[s] >= 0 {
			continue
		}
		cid := int32(count)
		count++
		id[s] = cid
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.Neighbors(u) {
				if id[e.To] < 0 {
					id[e.To] = cid
					queue = append(queue, e.To)
				}
			}
		}
	}
	return id, count
}

// IsConnected reports whether the graph has at most one connected
// component (the empty graph is connected by convention).
func (g *Graph) IsConnected() bool {
	_, c := g.Components()
	return c <= 1
}

// ComponentSizes returns the vertex count of each connected component.
func (g *Graph) ComponentSizes() []int {
	id, count := g.Components()
	sizes := make([]int, count)
	for _, c := range id {
		sizes[c]++
	}
	return sizes
}

// BFS returns the unweighted distance from src to every vertex, with -1
// for unreachable vertices.
func (g *Graph) BFS(src int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(u) {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src, or -1 if
// src reaches no other vertex.
func (g *Graph) Eccentricity(src int32) int32 {
	max := int32(-1)
	for v, d := range g.BFS(src) {
		if int32(v) != src && d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns h where h[d] is the number of vertices with
// degree d; len(h) = MaxDegree()+1 (len 0 for the empty graph).
func (g *Graph) DegreeHistogram() []int {
	if g.N() == 0 {
		return nil
	}
	h := make([]int, g.MaxDegree()+1)
	for v := int32(0); int(v) < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for v := int32(0); int(v) < g.N(); v++ {
		if g.Degree(v) != d {
			return false
		}
	}
	return true
}

// CountTriangles returns the number of triangles, used by generator tests
// as a structural fingerprint. O(sum of deg² ) — fine at test sizes.
func (g *Graph) CountTriangles() int64 {
	var t int64
	mark := make([]bool, g.N())
	for u := int32(0); int(u) < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			mark[e.To] = true
		}
		for _, e := range g.Neighbors(u) {
			v := e.To
			if v < u {
				continue
			}
			for _, f := range g.Neighbors(v) {
				w := f.To
				if w > v && mark[w] {
					t++
				}
			}
		}
		for _, e := range g.Neighbors(u) {
			mark[e.To] = false
		}
	}
	return t
}
