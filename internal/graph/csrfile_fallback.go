//go:build !unix

package graph

// openMapped on hosts without mmap support reads the whole file into an
// aligned buffer: same validation, same semantics, one copy slower.
func openMapped(path string) (data []byte, release func() error, err error) {
	data, err = readAligned(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
