package graph

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzCompactCSREquivalence pins the two offset representations to each
// other: the same edge multiset built compact (int32 offsets, the
// default), built wide through the DisableCompactCSR ablation, and
// adopted wide through FromCSR64 must agree on every accessor — vertex
// and edge counts, degrees, neighbor lists, pairwise edge weights — and
// on the cut of a fixed bisection, which is what the refinement
// algorithms ultimately compute from them.
func FuzzCompactCSREquivalence(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 1, 2, 3, 2, 3, 1, 0, 3, 200})
	f.Add([]byte{2, 0, 1, 255})
	f.Add([]byte{64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := int(data[0])%64 + 2
		type triple struct{ u, v, w int32 }
		var edges []triple
		for rest := data[1:]; len(rest) >= 3; rest = rest[3:] {
			u := int32(rest[0]) % int32(n)
			v := int32(rest[1]) % int32(n)
			if u == v {
				continue
			}
			edges = append(edges, triple{u, v, int32(rest[2])%7 + 1})
		}
		build := func(wide bool) *Graph {
			saved := DisableCompactCSR
			DisableCompactCSR = wide
			defer func() { DisableCompactCSR = saved }()
			b := NewBuilder(n)
			for _, e := range edges {
				b.AddWeightedEdge(e.u, e.v, e.w)
			}
			g, err := b.Build()
			if err != nil {
				t.Fatalf("Build(wide=%v): %v", wide, err)
			}
			return g
		}
		compact := build(false)
		wide := build(true)
		if !compact.Compact() || wide.Compact() {
			t.Fatalf("representations: compact.Compact()=%v wide.Compact()=%v", compact.Compact(), wide.Compact())
		}
		// Third form: the compact graph's own CSR arrays adopted wide.
		adopted, err := FromCSR64(widenOffsets(compact.off), append([]Edge(nil), compact.edges...), nil)
		if err != nil {
			t.Fatalf("FromCSR64: %v", err)
		}
		for _, g := range []*Graph{compact, wide, adopted} {
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		}
		check := func(name string, a, b *Graph) {
			t.Helper()
			if a.N() != b.N() || a.M() != b.M() || a.TotalEdgeWeight() != b.TotalEdgeWeight() ||
				a.MaxDegree() != b.MaxDegree() || a.MaxWeightedDegree() != b.MaxWeightedDegree() {
				t.Fatalf("%s: aggregate mismatch: %v vs %v", name, a, b)
			}
			for v := int32(0); int(v) < n; v++ {
				if a.Degree(v) != b.Degree(v) || a.WeightedDegree(v) != b.WeightedDegree(v) {
					t.Fatalf("%s: degree mismatch at %d", name, v)
				}
				na, nb := a.Neighbors(v), b.Neighbors(v)
				if len(na) != len(nb) {
					t.Fatalf("%s: neighbor count mismatch at %d", name, v)
				}
				for i := range na {
					if na[i] != nb[i] {
						t.Fatalf("%s: neighbors of %d differ at slot %d: %v vs %v", name, v, i, na[i], nb[i])
					}
				}
			}
			for u := int32(0); int(u) < n; u++ {
				for v := int32(0); int(v) < n; v++ {
					if a.EdgeWeight(u, v) != b.EdgeWeight(u, v) {
						t.Fatalf("%s: EdgeWeight(%d,%d) differs", name, u, v)
					}
				}
			}
			if ca, cb := fixedCut(a), fixedCut(b); ca != cb {
				t.Fatalf("%s: fixed-bisection cut differs: %d vs %d", name, ca, cb)
			}
			var ea, eb bytes.Buffer
			a.Edges(func(u, v, w int32) { fmt.Fprintf(&ea, "%d %d %d\n", u, v, w) })
			b.Edges(func(u, v, w int32) { fmt.Fprintf(&eb, "%d %d %d\n", u, v, w) })
			if !bytes.Equal(ea.Bytes(), eb.Bytes()) {
				t.Fatalf("%s: Edges enumeration differs", name)
			}
		}
		check("compact-vs-wide", compact, wide)
		check("compact-vs-adopted", compact, adopted)
	})
}

// fixedCut computes the cut of the parity bisection (side = v mod 2)
// straight from the edge enumeration.
func fixedCut(g *Graph) int64 {
	var cut int64
	g.Edges(func(u, v, w int32) {
		if u&1 != v&1 {
			cut += int64(w)
		}
	})
	return cut
}
