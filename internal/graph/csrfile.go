package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// This file implements the on-disk binary CSR format ("BCSR") and its
// two loaders: OpenCSRFile, which memory-maps the file and serves the
// graph zero-copy straight out of the mapping, and ReadCSRFile, the
// allocating stream reader. The format exists for the 10^6+-vertex
// instances where re-parsing a text edge list on every run costs more
// than the bisection itself; an mmap open touches each byte at most
// once (a structural validation sweep) and allocates nothing but the
// Graph header.
//
// Layout (documented for external tooling in docs/PERFORMANCE.md):
// everything little-endian, every section 8-byte aligned.
//
//	[0:8)   magic "BCSRG1\x00\x00"
//	[8:16)  n — vertex count
//	[16:24) m — undirected edge count (the file stores 2m half-edges)
//	[24:32) flags: bit 0 = wide (int64) offsets, bit 1 = vertex weights
//	[32:40) total edge weight (int64)
//	[40:48) total vertex weight (int64)
//	[48:56) maximum degree
//	[56:64) maximum weighted degree (int64)
//	[64:72) maximum vertex weight (int64)
//	--- sections, in order, each padded to an 8-byte boundary ---
//	off    (n+1) × 4 bytes (compact) or × 8 bytes (wide)
//	edges  2m × 8 bytes (int32 head, int32 weight — the in-memory Edge)
//	vw     n × 4 bytes, only when flag bit 1 is set
//	wdeg   n × 8 bytes (per-vertex weighted degree, int64)
//
// The header aggregates and the wdeg section duplicate what a full
// sweep could recompute; storing them is what makes the load cheap.
// They are not trusted: the open sweep recomputes every aggregate from
// the edge section and rejects the file on any mismatch, so a Graph
// served from a BCSR file satisfies exactly the invariants a Builder
// output does, except adjacency symmetry, which is the writer's
// contract (WriteCSRFile only ever writes symmetric CSR; a forged
// asymmetric file yields wrong cuts, never memory unsafety, and
// Validate catches it on demand).
//
// The mapped memory is read-only. Nothing in the public Graph API
// mutates CSR storage, so a mapped Graph is usable everywhere an
// in-memory one is; it remains valid until CSRFile.Close.

// ErrCorruptBCSR is wrapped by every validation failure the BCSR loaders
// can report about the file's *contents* — truncation, bad magic, offset
// or aggregate inconsistencies, out-of-range fields. Callers distinguish
// "this file is damaged" (errors.Is(err, ErrCorruptBCSR): quarantine or
// regenerate it) from environmental failures (missing file, permissions,
// big-endian host) that retrying or fixing the setup can cure. Both
// OpenCSRFile and ReadCSRFile return it; neither ever panics on
// attacker-controlled bytes — the fuzz harness in boundary_test.go holds
// them to that.
var ErrCorruptBCSR = errors.New("corrupt BCSR image")

// bcsrErrf builds a validation error carrying ErrCorruptBCSR.
func bcsrErrf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorruptBCSR)
}

const (
	csrMagic      = "BCSRG1\x00\x00"
	csrHeaderSize = 72
	csrFlagWide   = 1 << 0
	csrFlagVW     = 1 << 1
)

// The zero-copy casts require Edge to be exactly two packed int32s; a
// padding change would silently corrupt the format, so pin the size at
// compile time.
var _ = [1]struct{}{}[unsafe.Sizeof(Edge{})-8]

// hostLittleEndian reports whether the host matches the format's byte
// order; the zero-copy loaders refuse to run on big-endian hosts.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func pad8(n int64) int64 { return (n + 7) &^ 7 }

// csrLayout computes the byte offsets of each section for a graph with
// n vertices, 2m half-edges, and the given representation flags.
type csrLayout struct {
	offPos, edgePos, vwPos, wdegPos, total int64
	wide, hasVW                            bool
}

func layoutCSR(n, m int64, wide, hasVW bool) csrLayout {
	l := csrLayout{wide: wide, hasVW: hasVW}
	l.offPos = csrHeaderSize
	offBytes := (n + 1) * 4
	if wide {
		offBytes = (n + 1) * 8
	}
	l.edgePos = l.offPos + pad8(offBytes)
	l.vwPos = l.edgePos + 2*m*8
	l.wdegPos = l.vwPos
	if hasVW {
		l.wdegPos += pad8(n * 4)
	}
	l.total = l.wdegPos + n*8
	return l
}

// WriteCSRFile writes g in the BCSR format. The writer should be
// buffered for large graphs; cmd/gengraph wraps a bufio.Writer around
// the output file.
func WriteCSRFile(w io.Writer, g *Graph) error {
	if !hostLittleEndian {
		return fmt.Errorf("graph: BCSR requires a little-endian host")
	}
	wide := !g.Compact()
	hasVW := g.vw != nil
	var hdr [csrHeaderSize]byte
	copy(hdr[0:8], csrMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.m))
	var flags uint64
	if wide {
		flags |= csrFlagWide
	}
	if hasVW {
		flags |= csrFlagVW
	}
	binary.LittleEndian.PutUint64(hdr[24:32], flags)
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(g.ew))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(g.vwUp))
	binary.LittleEndian.PutUint64(hdr[48:56], uint64(g.maxDeg))
	binary.LittleEndian.PutUint64(hdr[56:64], uint64(g.maxWDeg))
	binary.LittleEndian.PutUint64(hdr[64:72], uint64(g.maxVW))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var pad [8]byte
	writePadded := func(b []byte) error {
		if _, err := w.Write(b); err != nil {
			return err
		}
		if rem := len(b) & 7; rem != 0 {
			if _, err := w.Write(pad[:8-rem]); err != nil {
				return err
			}
		}
		return nil
	}
	var offBytes []byte
	if wide {
		offBytes = int64Bytes(g.off64)
	} else {
		offBytes = int32Bytes(g.off)
	}
	if err := writePadded(offBytes); err != nil {
		return err
	}
	if err := writePadded(edgeBytes(g.edges)); err != nil {
		return err
	}
	if hasVW {
		if err := writePadded(int32Bytes(g.vw)); err != nil {
			return err
		}
	}
	return writePadded(int64Bytes(g.wdeg))
}

// CSRFile is an open BCSR file. Graph returns the graph served from the
// file's (possibly memory-mapped) bytes; it is valid until Close.
type CSRFile struct {
	g       Graph
	release func() error
}

// Graph returns the loaded graph. It aliases the file mapping: using it
// after Close is invalid, and its storage is read-only.
func (c *CSRFile) Graph() *Graph { return &c.g }

// Close releases the mapping (or buffer). The graph obtained from Graph
// must not be used afterwards.
func (c *CSRFile) Close() error {
	if c.release == nil {
		return nil
	}
	rel := c.release
	c.release = nil
	c.g = Graph{}
	return rel()
}

// OpenCSRFile opens a BCSR file for zero-copy access. On unix hosts the
// file is memory-mapped read-only and the returned graph's CSR arrays
// point directly into the mapping — the load cost is one structural
// validation sweep, no copies, no per-edge allocation. Elsewhere the
// file is read into memory with the same validation. Close the returned
// CSRFile when done with the graph.
func OpenCSRFile(path string) (*CSRFile, error) {
	data, release, err := openMapped(path)
	if err != nil {
		return nil, err
	}
	c := &CSRFile{release: release}
	if err := parseCSRInto(&c.g, data); err != nil {
		_ = release()
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return c, nil
}

// ReadCSRFile reads a BCSR stream into freshly allocated memory — the
// portable counterpart of OpenCSRFile for readers that are not files.
// The benchmark suite uses the pair to price mmap against copying.
func ReadCSRFile(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Re-home the bytes in a uint64-backed buffer so the zero-copy
	// section casts are guaranteed 8-byte aligned.
	buf := make([]uint64, (len(data)+7)/8)
	aligned := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(buf))), len(buf)*8)[:len(data)]
	copy(aligned, data)
	g := &Graph{}
	if err := parseCSRInto(g, aligned); err != nil {
		return nil, err
	}
	return g, nil
}

// parseCSRInto validates data as a BCSR image and initializes g with
// sections aliasing it. The sweep checks everything ResetCSR would —
// offset monotonicity, head range, strict row sortedness (which rules
// out self-loops and duplicates), positive weights — and additionally
// holds the stored wdeg section and every header aggregate to the
// values recomputed from the edges.
func parseCSRInto(g *Graph, data []byte) error {
	if !hostLittleEndian {
		return bcsrErrf("BCSR requires a little-endian host")
	}
	if len(data) < csrHeaderSize {
		return bcsrErrf("BCSR file truncated: %d bytes", len(data))
	}
	if string(data[0:8]) != csrMagic {
		return bcsrErrf("not a BCSR file (bad magic)")
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	m := binary.LittleEndian.Uint64(data[16:24])
	flags := binary.LittleEndian.Uint64(data[24:32])
	ew := int64(binary.LittleEndian.Uint64(data[32:40]))
	vwUp := int64(binary.LittleEndian.Uint64(data[40:48]))
	maxDeg := binary.LittleEndian.Uint64(data[48:56])
	maxWDeg := int64(binary.LittleEndian.Uint64(data[56:64]))
	maxVW := int64(binary.LittleEndian.Uint64(data[64:72]))
	if flags&^(csrFlagWide|csrFlagVW) != 0 {
		return bcsrErrf("BCSR flags %#x unsupported", flags)
	}
	wide := flags&csrFlagWide != 0
	hasVW := flags&csrFlagVW != 0
	if n > MaxVertices {
		return bcsrErrf("BCSR vertex count %d exceeds limit %d", n, MaxVertices)
	}
	if m > 1<<40 {
		return bcsrErrf("BCSR edge count %d implausible", m)
	}
	if !wide && 2*m > maxCompactHalfEdges {
		return bcsrErrf("BCSR declares compact offsets for %d half-edges", 2*m)
	}
	l := layoutCSR(int64(n), int64(m), wide, hasVW)
	if int64(len(data)) != l.total {
		return bcsrErrf("BCSR size %d, want %d for n=%d m=%d", len(data), l.total, n, m)
	}
	if uintptr(unsafe.Pointer(unsafe.SliceData(data)))&7 != 0 {
		return bcsrErrf("BCSR image not 8-byte aligned")
	}

	nn, half := int(n), int(2*m)
	var off []int32
	var off64 []int64
	if wide {
		off64 = sliceOf[int64](data[l.offPos:], nn+1)
	} else {
		off = sliceOf[int32](data[l.offPos:], nn+1)
	}
	edges := sliceOf[Edge](data[l.edgePos:], half)
	var vw []int32
	if hasVW {
		vw = sliceOf[int32](data[l.vwPos:], nn)
	}
	wdeg := sliceOf[int64](data[l.wdegPos:], nn)

	var first int64
	if wide {
		first = off64[0]
	} else {
		first = int64(off[0])
	}
	if first != 0 {
		return bcsrErrf("BCSR offsets start at %d, not 0", first)
	}
	rowEnd := func(v int) int64 {
		if wide {
			return off64[v+1]
		}
		return int64(off[v+1])
	}
	var (
		m2       int64
		ew2      int64
		maxDeg2  int
		maxWDeg2 int64
	)
	lo := int64(0)
	for v := 0; v < nn; v++ {
		hi := rowEnd(v)
		if hi < lo || hi > int64(half) {
			return bcsrErrf("BCSR offsets invalid at vertex %d", v)
		}
		if d := int(hi - lo); d > maxDeg2 {
			maxDeg2 = d
		}
		var wd int64
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.To < 0 || int(e.To) >= nn {
				return bcsrErrf("BCSR vertex %d has neighbor %d out of range [0,%d)", v, e.To, nn)
			}
			if int(e.To) == v {
				return bcsrErrf("BCSR self-loop at vertex %d", v)
			}
			if e.To <= prev {
				return bcsrErrf("BCSR adjacency of vertex %d not strictly sorted at %d", v, e.To)
			}
			if e.W <= 0 {
				return bcsrErrf("BCSR non-positive weight %d on edge {%d,%d}", e.W, v, e.To)
			}
			prev = e.To
			wd += int64(e.W)
			if int(e.To) > v {
				m2++
				ew2 += int64(e.W)
			}
		}
		if wd != wdeg[v] {
			return bcsrErrf("BCSR stored weighted degree %d of vertex %d != actual %d", wdeg[v], v, wd)
		}
		if wd > maxWDeg2 {
			maxWDeg2 = wd
		}
		lo = hi
	}
	if lo != int64(half) {
		return bcsrErrf("BCSR offsets cover %d half-edges, file stores %d", lo, half)
	}
	if m2 != int64(m) || ew2 != ew || maxDeg2 != int(maxDeg) || maxWDeg2 != maxWDeg {
		return bcsrErrf("BCSR header aggregates disagree with edge section")
	}
	var vwUp2 int64
	var maxVW2 int32 = 1
	if hasVW {
		for v, w := range vw {
			if w <= 0 {
				return bcsrErrf("BCSR non-positive vertex weight %d at vertex %d", w, v)
			}
			vwUp2 += int64(w)
			if w > maxVW2 {
				maxVW2 = w
			}
		}
	} else {
		vwUp2 = int64(nn)
	}
	if vwUp2 != vwUp || int64(maxVW2) != maxVW {
		return bcsrErrf("BCSR header vertex-weight aggregates disagree")
	}

	*g = Graph{
		n: nn, off: off, off64: off64, edges: edges, vw: vw, wdeg: wdeg,
		m: int(m), ew: ew, vwUp: vwUp,
		maxDeg: int(maxDeg), maxWDeg: maxWDeg, maxVW: maxVW2,
	}
	return nil
}

// sliceOf reinterprets the head of an 8-byte-aligned byte slice as n
// values of type T. Callers guarantee the byte length covers n*sizeof(T)
// (the layout size check) and the alignment (mmap pages and the
// uint64-backed read buffer are both 8-byte aligned).
func sliceOf[T int32 | int64 | Edge](b []byte, n int) []T {
	if n == 0 {
		return []T{}
	}
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*4)
}

func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
}

func edgeBytes(s []Edge) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
}

// readAligned loads a whole file into a uint64-backed (hence 8-byte
// aligned) buffer; the non-mmap fallback for OpenCSRFile.
func readAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	buf := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(buf))), len(buf)*8)[:size]
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return data, nil
}
