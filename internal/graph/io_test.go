package graph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

// graphsEqual compares two graphs structurally.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); int(v) < a.N(); v++ {
		if a.VertexWeight(v) != b.VertexWeight(v) {
			return false
		}
		if len(a.Neighbors(v)) != len(b.Neighbors(v)) {
			return false
		}
		for i, e := range a.Neighbors(v) {
			f := b.Neighbors(v)[i]
			if e != f {
				return false
			}
		}
	}
	return true
}

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.NewFib(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		g := randomGraph(r, n, r.Intn(3*n))
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n", trial, err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("trial %d: round trip changed the graph", trial)
		}
	}
}

func TestEdgeListRoundTripVertexWeights(t *testing.T) {
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 3)
	b.AddEdge(2, 3)
	b.SetVertexWeight(0, 2)
	b.SetVertexWeight(3, 7)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("weighted round trip changed the graph")
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\n\ngraph 3 2\ne 0 1\n# another\ne 1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing header", "e 0 1\n"},
		{"duplicate header", "graph 2 0\ngraph 2 0\n"},
		{"bad n", "graph x 0\n"},
		{"bad m", "graph 2 y\n"},
		{"edge count mismatch", "graph 3 5\ne 0 1\n"},
		{"malformed edge", "graph 2 1\ne 0\n"},
		{"bad weight", "graph 2 1\ne 0 1 z\n"},
		{"unknown record", "graph 2 0\nq 1 2\n"},
		{"empty", ""},
		{"self loop", "graph 2 1\ne 1 1\n"},
		{"vertex before header", "v 0 2\n"},
		{"malformed vertex", "graph 2 0 vweights\nv 0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	r := rng.NewFib(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(30)
		g := randomGraph(r, n, r.Intn(3*n))
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("trial %d: METIS round trip changed the graph", trial)
		}
	}
}

func TestMETISRoundTripUnweighted(t *testing.T) {
	g := path(t, 6)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Header of an unweighted graph should have no fmt code.
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if fields := strings.Fields(first); len(fields) != 2 {
		t.Fatalf("unexpected METIS header %q", first)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("round trip changed the graph")
	}
}

func TestMETISRoundTripVertexWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.SetVertexWeight(1, 4)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("vertex-weighted METIS round trip changed the graph")
	}
}

func TestReadMETISComments(t *testing.T) {
	in := "% comment\n3 2\n2\n1 3\n2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("missing edges")
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x\n"},
		{"bad fmt", "2 1 7\n2\n1\n"},
		{"ncon", "2 1 11 2\n1 2\n1 1\n"},
		{"too many lines", "1 0\n\n\n2\n"},
		{"bad neighbor", "2 1\nx\n1\n"},
	}
	for _, tc := range cases {
		if _, err := ReadMETIS(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rng.NewFib(3)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(25)
		g := randomGraph(r, n, r.Intn(2*n))
		data, err := MarshalGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalGraph(data)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("trial %d: JSON round trip changed the graph", trial)
		}
	}
}

func TestJSONRoundTripWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 2, 9)
	b.SetVertexWeight(2, 3)
	g := b.MustBuild()
	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("JSON round trip changed the weighted graph")
	}
}

func TestUnmarshalGraphRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalGraph([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalGraph([]byte(`{"n":1,"edges":[[0,5,1]]}`)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}
