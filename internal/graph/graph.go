// Package graph provides the weighted undirected graph substrate used by
// every algorithm in the repository.
//
// Graphs are simple (no self-loops, no parallel edges) but carry integer
// edge weights and vertex weights, because the compaction heuristic of the
// paper contracts matchings: contracting an edge merges parallel edges
// into a single weighted edge and adds the endpoint vertex weights. Plain
// input graphs have all weights equal to one, so the weighted cut of an
// uncontracted graph equals the paper's unweighted cut.
//
// Vertices are identified by dense indices 0..N()-1 of type int32 (the
// paper's instances are thousands of vertices; int32 halves the memory of
// the adjacency structure and keeps it cache-friendly).
//
// Storage is compressed sparse row (CSR): one contiguous []Edge holding
// all half-edges plus an N()+1 offset array, with each vertex's list
// sorted by head vertex. The flat layout keeps refinement inner loops
// (which walk the neighborhoods of many vertices per pass) on sequential
// memory, and the sorted lists make EdgeWeight a binary search instead of
// a linear probe. Derived per-vertex quantities that the algorithms
// consult every pass — weighted degree, the maximum weighted degree (the
// gain-bucket bound), the maximum vertex weight — are computed once at
// Build time and served in O(1).
package graph

import (
	"fmt"
	"sort"
)

// Edge is a half-edge: the head vertex and the weight of the connecting
// edge. Each undirected edge {u,v} appears once in u's list and once in
// v's list with equal weight.
type Edge struct {
	To int32
	W  int32
}

// Graph is an immutable weighted undirected simple graph. Construct one
// with a Builder or a generator from internal/gen.
//
// Two CSR offset representations exist behind the same accessors: the
// compact one (int32 offsets, half the index memory, the default
// whenever the half-edge count fits) and the wide one (int64 offsets,
// required once a graph carries 2³¹ or more half-edges). Exactly one of
// off/off64 is non-nil on a built graph; every accessor branches on
// that, so algorithms never see the difference. DisableCompactCSR
// forces the wide representation for ablation and equivalence testing.
type Graph struct {
	n     int
	off   []int32 // compact CSR offsets: v's half-edges are edges[off[v]:off[v+1]]
	off64 []int64 // wide CSR offsets; nil when the compact form is in use
	edges []Edge  // all half-edges, each list sorted by To
	vw    []int32
	wdeg  []int64 // cached weighted degree per vertex
	m     int     // number of undirected edges
	ew    int64   // total edge weight
	vwUp  int64   // total vertex weight

	maxDeg  int   // cached maximum degree
	maxWDeg int64 // cached maximum weighted degree (the gain bound)
	maxVW   int32 // cached maximum vertex weight (1 for plain graphs)
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// TotalEdgeWeight returns the sum of weights over undirected edges.
func (g *Graph) TotalEdgeWeight() int64 { return g.ew }

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 { return g.vwUp }

// Compact reports whether the graph uses the compact (int32-offset) CSR
// representation. The empty graph counts as compact.
func (g *Graph) Compact() bool { return g.off64 == nil }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	if g.off != nil {
		return int(g.off[v+1] - g.off[v])
	}
	return int(g.off64[v+1] - g.off64[v])
}

// WeightedDegree returns the sum of edge weights incident to v (cached at
// Build time; O(1)).
func (g *Graph) WeightedDegree(v int32) int64 { return g.wdeg[v] }

// MaxWeightedDegree returns the maximum weighted degree over all vertices
// (0 for the empty graph). This is the gain bound the bucket structures
// of the refinement algorithms need every pass; it is cached at Build
// time.
func (g *Graph) MaxWeightedDegree() int64 { return g.maxWDeg }

// MaxVertexWeight returns the largest vertex weight (1 for plain graphs
// and for the empty graph, so it is always a valid positive weight).
func (g *Graph) MaxVertexWeight() int32 { return g.maxVW }

// Neighbors returns v's adjacency list, sorted by head vertex. The
// returned slice aliases the graph's CSR storage and must not be
// modified.
func (g *Graph) Neighbors(v int32) []Edge {
	if g.off != nil {
		return g.edges[g.off[v]:g.off[v+1]:g.off[v+1]]
	}
	return g.edges[g.off64[v]:g.off64[v+1]:g.off64[v+1]]
}

// rowBounds returns the half-edge index range of v's row in whichever
// offset representation the graph uses.
func (g *Graph) rowBounds(v int32) (lo, hi int) {
	if g.off != nil {
		return int(g.off[v]), int(g.off[v+1])
	}
	return int(g.off64[v]), int(g.off64[v+1])
}

// VertexWeight returns the weight of v (1 for plain graphs).
func (g *Graph) VertexWeight(v int32) int32 {
	if g.vw == nil {
		return 1
	}
	return g.vw[v]
}

// Weighted reports whether the graph carries non-unit vertex weights.
func (g *Graph) Weighted() bool { return g.vw != nil }

// AvgDegree returns the average (unweighted) vertex degree, 2M/N.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// HasEdge reports whether {u,v} is an edge. O(log min(deg u, deg v)).
func (g *Graph) HasEdge(u, v int32) bool {
	return g.EdgeWeight(u, v) != 0
}

// edgeWeightSearchMin is the list length above which EdgeWeight switches
// from a linear scan to binary search; short lists (the common case on
// the paper's sparse instances) scan faster than they bisect.
const edgeWeightSearchMin = 8

// EdgeWeight returns the weight of edge {u,v}, or 0 if absent. Adjacency
// lists are sorted by head vertex, so this is a binary search on the
// smaller endpoint's list (with a linear scan below a small cutoff).
func (g *Graph) EdgeWeight(u, v int32) int32 {
	lo, hi := g.rowBounds(u)
	if l2, h2 := g.rowBounds(v); h2-l2 < hi-lo {
		lo, hi, v = l2, h2, u
	}
	if hi-lo <= edgeWeightSearchMin {
		for i := lo; i < hi; i++ {
			if g.edges[i].To == v {
				return g.edges[i].W
			}
		}
		return 0
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if t := g.edges[mid].To; t == v {
			return g.edges[mid].W
		} else if t < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return 0
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph;
// cached at Build time).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Edges calls fn once per undirected edge {u,v} with u < v.
func (g *Graph) Edges(fn func(u, v int32, w int32)) {
	for u := 0; u < g.n; u++ {
		for _, e := range g.Neighbors(int32(u)) {
			if int32(u) < e.To {
				fn(int32(u), e.To, e.W)
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := *g
	c.off = append([]int32(nil), g.off...)
	c.off64 = append([]int64(nil), g.off64...)
	c.edges = append([]Edge(nil), g.edges...)
	c.wdeg = append([]int64(nil), g.wdeg...)
	if g.vw != nil {
		c.vw = append([]int32(nil), g.vw...)
	}
	return &c
}

// Validate checks the structural invariants: adjacency symmetry with equal
// weights, sorted lists, no self-loops, no parallel edges, positive
// weights, and consistent cached totals. It returns the first violation
// found.
func (g *Graph) Validate() error {
	if g.off != nil && g.off64 != nil {
		return fmt.Errorf("graph: both compact and wide offset arrays populated")
	}
	if g.off64 != nil {
		if len(g.off64) != g.n+1 {
			return fmt.Errorf("graph: wide offset array has %d entries for %d vertices", len(g.off64), g.n)
		}
	} else if len(g.off) != g.n+1 && !(g.n == 0 && len(g.off) == 0) {
		return fmt.Errorf("graph: offset array has %d entries for %d vertices", len(g.off), g.n)
	}
	var m int
	var ew int64
	var maxDeg int
	var maxWDeg int64
	for u := int32(0); int(u) < g.n; u++ {
		nbrs := g.Neighbors(u)
		if len(nbrs) > maxDeg {
			maxDeg = len(nbrs)
		}
		var wd int64
		for i, e := range nbrs {
			if e.To < 0 || int(e.To) >= g.n {
				return fmt.Errorf("graph: vertex %d has neighbor %d out of range [0,%d)", u, e.To, g.n)
			}
			if e.To == u {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			if e.W <= 0 {
				return fmt.Errorf("graph: non-positive weight %d on edge {%d,%d}", e.W, u, e.To)
			}
			if i > 0 && nbrs[i-1].To >= e.To {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at %d", u, e.To)
			}
			if w := g.EdgeWeight(e.To, u); w != e.W {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}: %d vs %d", u, e.To, e.W, w)
			}
			wd += int64(e.W)
			if u < e.To {
				m++
				ew += int64(e.W)
			}
		}
		if wd != g.wdeg[u] {
			return fmt.Errorf("graph: cached weighted degree %d of vertex %d != actual %d", g.wdeg[u], u, wd)
		}
		if wd > maxWDeg {
			maxWDeg = wd
		}
	}
	if m != g.m {
		return fmt.Errorf("graph: cached edge count %d != actual %d", g.m, m)
	}
	if ew != g.ew {
		return fmt.Errorf("graph: cached edge weight %d != actual %d", g.ew, ew)
	}
	if maxDeg != g.maxDeg {
		return fmt.Errorf("graph: cached max degree %d != actual %d", g.maxDeg, maxDeg)
	}
	if maxWDeg != g.maxWDeg {
		return fmt.Errorf("graph: cached max weighted degree %d != actual %d", g.maxWDeg, maxWDeg)
	}
	var vw int64
	var maxVW int32 = 1
	for v := int32(0); int(v) < g.n; v++ {
		w := g.VertexWeight(v)
		if w <= 0 {
			return fmt.Errorf("graph: non-positive vertex weight %d at vertex %d", w, v)
		}
		if w > maxVW {
			maxVW = w
		}
		vw += int64(w)
	}
	if vw != g.vwUp {
		return fmt.Errorf("graph: cached vertex weight %d != actual %d", g.vwUp, vw)
	}
	if maxVW != g.maxVW {
		return fmt.Errorf("graph: cached max vertex weight %d != actual %d", g.maxVW, maxVW)
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d avgdeg=%.2f}", g.N(), g.M(), g.AvgDegree())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// insertions of the same undirected edge are merged by summing weights
// (this is what contraction needs); self-loops are rejected at Build time
// unless dropped with AddEdgeSafe-style pre-checks by the caller.
type Builder struct {
	n   int
	vw  []int32
	us  []int32
	vs  []int32
	ws  []int32
	err error
}

// MaxVertices bounds graph sizes accepted by Builder (and therefore by
// every parser): 2²⁷ ≈ 134M vertices. The cap exists so that malformed
// or hostile inputs declaring absurd vertex counts fail fast instead of
// exhausting memory; it admits the 10^7-vertex instances the scale
// bench drives while staying well below every int32 limit on the
// construction path — vertex ids and bucket links stay exact through
// 2³¹−1, and compact CSR offsets are guarded separately by
// maxCompactHalfEdges (graphs beyond 2³¹−1 half-edges take the wide
// int64-offset representation automatically).
const MaxVertices = 1 << 27

// NewBuilder returns a Builder for a graph on n vertices with unit vertex
// weights.
func NewBuilder(n int) *Builder {
	if n < 0 {
		return &Builder{err: fmt.Errorf("graph: negative vertex count %d", n)}
	}
	if n > MaxVertices {
		return &Builder{err: fmt.Errorf("graph: vertex count %d exceeds limit %d", n, MaxVertices)}
	}
	return &Builder{n: n}
}

// SetVertexWeight sets the weight of vertex v. Weights default to 1.
func (b *Builder) SetVertexWeight(v int32, w int32) {
	if b.err != nil {
		return
	}
	if v < 0 || int(v) >= b.n {
		b.err = fmt.Errorf("graph: SetVertexWeight vertex %d out of range [0,%d)", v, b.n)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: SetVertexWeight non-positive weight %d", w)
		return
	}
	if b.vw == nil {
		b.vw = make([]int32, b.n)
		for i := range b.vw {
			b.vw[i] = 1
		}
	}
	b.vw[v] = w
}

// AddEdge records the undirected unit-weight edge {u,v}.
func (b *Builder) AddEdge(u, v int32) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u,v} with weight w.
// Repeated insertions of the same pair are merged by summing weights.
func (b *Builder) AddWeightedEdge(u, v int32, w int32) {
	if b.err != nil {
		return
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		b.err = fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at vertex %d", u)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: non-positive edge weight %d on {%d,%d}", w, u, v)
		return
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// Build finalizes the graph: it merges duplicate edges, lays the
// half-edges out in CSR order with each list sorted by head vertex, and
// computes the cached totals and per-vertex degree summaries.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Sort edge triples by (u, v) to merge duplicates in one pass.
	idx := make([]int, len(b.us))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if b.us[i] != b.us[j] {
			return b.us[i] < b.us[j]
		}
		return b.vs[i] < b.vs[j]
	})

	g := &Graph{n: b.n}
	deg := make([]int32, b.n)
	// First pass: merged edge list and degrees.
	type triple struct{ u, v, w int32 }
	merged := make([]triple, 0, len(idx))
	for k := 0; k < len(idx); {
		i := idx[k]
		u, v := b.us[i], b.vs[i]
		var w int64
		for k < len(idx) && b.us[idx[k]] == u && b.vs[idx[k]] == v {
			w += int64(b.ws[idx[k]])
			k++
		}
		if w > 1<<30 {
			return nil, fmt.Errorf("graph: merged weight %d on edge {%d,%d} overflows", w, u, v)
		}
		merged = append(merged, triple{u, v, int32(w)})
		deg[u]++
		deg[v]++
	}
	// CSR offsets by prefix sum, then scatter the half-edges with a
	// per-vertex cursor. The compact (int32) offsets are used whenever
	// the half-edge count fits; DisableCompactCSR (or 2³¹+ half-edges)
	// selects the wide (int64) representation, which every accessor
	// serves through the same code paths.
	if DisableCompactCSR || 2*len(merged) > maxCompactHalfEdges {
		g.off64 = make([]int64, b.n+1)
		for v := 0; v < b.n; v++ {
			g.off64[v+1] = g.off64[v] + int64(deg[v])
		}
	} else {
		g.off = make([]int32, b.n+1)
		for v := 0; v < b.n; v++ {
			g.off[v+1] = g.off[v] + deg[v]
		}
	}
	g.edges = make([]Edge, 2*len(merged))
	cur := make([]int64, b.n)
	for v := 0; v < b.n; v++ {
		lo, _ := g.rowBounds(int32(v))
		cur[v] = int64(lo)
	}
	for _, t := range merged {
		g.edges[cur[t.u]] = Edge{To: t.v, W: t.w}
		cur[t.u]++
		g.edges[cur[t.v]] = Edge{To: t.u, W: t.w}
		cur[t.v]++
		g.m++
		g.ew += int64(t.w)
	}
	// merged is sorted by (u, v): vertex u's forward half-edges (to v > u)
	// arrive in sorted order, and so do its reverse half-edges (from
	// u' < u, emitted in increasing u'), but the two runs interleave —
	// sort each list once to establish the by-To order EdgeWeight relies
	// on.
	for v := 0; v < b.n; v++ {
		lo, hi := g.rowBounds(int32(v))
		a := g.edges[lo:hi]
		sort.Slice(a, func(i, j int) bool { return a[i].To < a[j].To })
	}
	g.wdeg = make([]int64, b.n)
	for v := 0; v < b.n; v++ {
		var wd int64
		for _, e := range g.Neighbors(int32(v)) {
			wd += int64(e.W)
		}
		g.wdeg[v] = wd
		if wd > g.maxWDeg {
			g.maxWDeg = wd
		}
		if d := int(deg[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.maxVW = 1
	if b.vw != nil {
		g.vw = b.vw
		for _, w := range b.vw {
			g.vwUp += int64(w)
			if w > g.maxVW {
				g.maxVW = w
			}
		}
	} else {
		g.vwUp = int64(b.n)
	}
	return g, nil
}

// MustBuild is Build but panics on error; for use in tests and generators
// whose inputs are validated upstream.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
