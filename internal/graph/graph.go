// Package graph provides the weighted undirected graph substrate used by
// every algorithm in the repository.
//
// Graphs are simple (no self-loops, no parallel edges) but carry integer
// edge weights and vertex weights, because the compaction heuristic of the
// paper contracts matchings: contracting an edge merges parallel edges
// into a single weighted edge and adds the endpoint vertex weights. Plain
// input graphs have all weights equal to one, so the weighted cut of an
// uncontracted graph equals the paper's unweighted cut.
//
// Vertices are identified by dense indices 0..N()-1 of type int32 (the
// paper's instances are thousands of vertices; int32 halves the memory of
// the adjacency structure and keeps it cache-friendly).
package graph

import (
	"fmt"
	"sort"
)

// Edge is a half-edge: the head vertex and the weight of the connecting
// edge. Each undirected edge {u,v} appears once in u's list and once in
// v's list with equal weight.
type Edge struct {
	To int32
	W  int32
}

// Graph is an immutable weighted undirected simple graph. Construct one
// with a Builder or a generator from internal/gen.
type Graph struct {
	adj  [][]Edge
	vw   []int32
	m    int   // number of undirected edges
	ew   int64 // total edge weight
	vwUp int64 // total vertex weight
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// TotalEdgeWeight returns the sum of weights over undirected edges.
func (g *Graph) TotalEdgeWeight() int64 { return g.ew }

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 { return g.vwUp }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// WeightedDegree returns the sum of edge weights incident to v.
func (g *Graph) WeightedDegree(v int32) int64 {
	var s int64
	for _, e := range g.adj[v] {
		s += int64(e.W)
	}
	return s
}

// Neighbors returns v's adjacency list. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Neighbors(v int32) []Edge { return g.adj[v] }

// VertexWeight returns the weight of v (1 for plain graphs).
func (g *Graph) VertexWeight(v int32) int32 {
	if g.vw == nil {
		return 1
	}
	return g.vw[v]
}

// Weighted reports whether the graph carries non-unit vertex weights.
func (g *Graph) Weighted() bool { return g.vw != nil }

// AvgDegree returns the average (unweighted) vertex degree, 2M/N.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.N())
}

// HasEdge reports whether {u,v} is an edge. O(min(deg u, deg v)).
func (g *Graph) HasEdge(u, v int32) bool {
	return g.EdgeWeight(u, v) != 0
}

// EdgeWeight returns the weight of edge {u,v}, or 0 if absent.
func (g *Graph) EdgeWeight(u, v int32) int32 {
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, u, v = g.adj[v], v, u
	}
	for _, e := range a {
		if e.To == v {
			return e.W
		}
	}
	return 0
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Edges calls fn once per undirected edge {u,v} with u < v.
func (g *Graph) Edges(fn func(u, v int32, w int32)) {
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if int32(u) < e.To {
				fn(int32(u), e.To, e.W)
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{m: g.m, ew: g.ew, vwUp: g.vwUp}
	c.adj = make([][]Edge, len(g.adj))
	for v := range g.adj {
		c.adj[v] = append([]Edge(nil), g.adj[v]...)
	}
	if g.vw != nil {
		c.vw = append([]int32(nil), g.vw...)
	}
	return c
}

// Validate checks the structural invariants: adjacency symmetry with equal
// weights, no self-loops, no parallel edges, positive weights, and
// consistent cached totals. It returns the first violation found.
func (g *Graph) Validate() error {
	var m int
	var ew int64
	for u := range g.adj {
		seen := make(map[int32]bool, len(g.adj[u]))
		for _, e := range g.adj[u] {
			if e.To < 0 || int(e.To) >= g.N() {
				return fmt.Errorf("graph: vertex %d has neighbor %d out of range [0,%d)", u, e.To, g.N())
			}
			if e.To == int32(u) {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			if e.W <= 0 {
				return fmt.Errorf("graph: non-positive weight %d on edge {%d,%d}", e.W, u, e.To)
			}
			if seen[e.To] {
				return fmt.Errorf("graph: parallel edge {%d,%d}", u, e.To)
			}
			seen[e.To] = true
			if w := g.EdgeWeight(e.To, int32(u)); w != e.W {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}: %d vs %d", u, e.To, e.W, w)
			}
			if int32(u) < e.To {
				m++
				ew += int64(e.W)
			}
		}
	}
	if m != g.m {
		return fmt.Errorf("graph: cached edge count %d != actual %d", g.m, m)
	}
	if ew != g.ew {
		return fmt.Errorf("graph: cached edge weight %d != actual %d", g.ew, ew)
	}
	var vw int64
	for v := int32(0); int(v) < g.N(); v++ {
		w := g.VertexWeight(v)
		if w <= 0 {
			return fmt.Errorf("graph: non-positive vertex weight %d at vertex %d", w, v)
		}
		vw += int64(w)
	}
	if vw != g.vwUp {
		return fmt.Errorf("graph: cached vertex weight %d != actual %d", g.vwUp, vw)
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d avgdeg=%.2f}", g.N(), g.M(), g.AvgDegree())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// insertions of the same undirected edge are merged by summing weights
// (this is what contraction needs); self-loops are rejected at Build time
// unless dropped with AddEdgeSafe-style pre-checks by the caller.
type Builder struct {
	n   int
	vw  []int32
	us  []int32
	vs  []int32
	ws  []int32
	err error
}

// MaxVertices bounds graph sizes accepted by Builder (and therefore by
// every parser): 2²² ≈ 4.2M vertices. The cap exists so that malformed
// or hostile inputs declaring absurd vertex counts fail fast instead of
// exhausting memory; it is three orders of magnitude above the paper's
// instances.
const MaxVertices = 1 << 22

// NewBuilder returns a Builder for a graph on n vertices with unit vertex
// weights.
func NewBuilder(n int) *Builder {
	if n < 0 {
		return &Builder{err: fmt.Errorf("graph: negative vertex count %d", n)}
	}
	if n > MaxVertices {
		return &Builder{err: fmt.Errorf("graph: vertex count %d exceeds limit %d", n, MaxVertices)}
	}
	return &Builder{n: n}
}

// SetVertexWeight sets the weight of vertex v. Weights default to 1.
func (b *Builder) SetVertexWeight(v int32, w int32) {
	if b.err != nil {
		return
	}
	if v < 0 || int(v) >= b.n {
		b.err = fmt.Errorf("graph: SetVertexWeight vertex %d out of range [0,%d)", v, b.n)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: SetVertexWeight non-positive weight %d", w)
		return
	}
	if b.vw == nil {
		b.vw = make([]int32, b.n)
		for i := range b.vw {
			b.vw[i] = 1
		}
	}
	b.vw[v] = w
}

// AddEdge records the undirected unit-weight edge {u,v}.
func (b *Builder) AddEdge(u, v int32) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u,v} with weight w.
// Repeated insertions of the same pair are merged by summing weights.
func (b *Builder) AddWeightedEdge(u, v int32, w int32) {
	if b.err != nil {
		return
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		b.err = fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at vertex %d", u)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: non-positive edge weight %d on {%d,%d}", w, u, v)
		return
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// Build finalizes the graph. It merges duplicate edges, sorts adjacency
// lists by head vertex, and computes the cached totals.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Sort edge triples by (u, v) to merge duplicates in one pass.
	idx := make([]int, len(b.us))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if b.us[i] != b.us[j] {
			return b.us[i] < b.us[j]
		}
		return b.vs[i] < b.vs[j]
	})

	g := &Graph{adj: make([][]Edge, b.n)}
	deg := make([]int32, b.n)
	// First pass: merged edge list and degrees.
	type triple struct{ u, v, w int32 }
	merged := make([]triple, 0, len(idx))
	for k := 0; k < len(idx); {
		i := idx[k]
		u, v := b.us[i], b.vs[i]
		var w int64
		for k < len(idx) && b.us[idx[k]] == u && b.vs[idx[k]] == v {
			w += int64(b.ws[idx[k]])
			k++
		}
		if w > 1<<30 {
			return nil, fmt.Errorf("graph: merged weight %d on edge {%d,%d} overflows", w, u, v)
		}
		merged = append(merged, triple{u, v, int32(w)})
		deg[u]++
		deg[v]++
	}
	for v := range g.adj {
		g.adj[v] = make([]Edge, 0, deg[v])
	}
	for _, t := range merged {
		g.adj[t.u] = append(g.adj[t.u], Edge{To: t.v, W: t.w})
		g.adj[t.v] = append(g.adj[t.v], Edge{To: t.u, W: t.w})
		g.m++
		g.ew += int64(t.w)
	}
	for v := range g.adj {
		a := g.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i].To < a[j].To })
	}
	if b.vw != nil {
		g.vw = b.vw
		for _, w := range b.vw {
			g.vwUp += int64(w)
		}
	} else {
		g.vwUp = int64(b.n)
	}
	return g, nil
}

// MustBuild is Build but panics on error; for use in tests and generators
// whose inputs are validated upstream.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
