//go:build unix

package graph

import (
	"os"
	"syscall"
)

// openMapped memory-maps path read-only. The mapping is page-aligned
// (so every 8-byte-aligned section offset stays aligned) and shared, so
// the kernel pages the CSR in on demand — opening a multi-gigabyte
// instance costs the validation sweep, not a copy. The file descriptor
// is closed immediately; the mapping keeps the pages alive until the
// release function runs.
func openMapped(path string) (data []byte, release func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects empty files; serve a zero-length buffer (the
		// parser will reject it as truncated, with a better message).
		return []byte{}, func() error { return nil }, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
