// Quickstart: generate a random regular graph with a planted bisection,
// run the paper's four algorithms on it, and compare the cuts they find
// against the planted width.
package main

import (
	"fmt"
	"log"
	"time"

	bisect "repro"
)

func main() {
	const (
		vertices = 1000
		planted  = 16
		degree   = 3
	)
	g, err := bisect.BReg(vertices, planted, degree, bisect.NewRand(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Gbreg(%d, %d, %d): %d edges, planted bisection width %d\n\n",
		vertices, planted, degree, g.M(), planted)

	// A short annealing schedule keeps the demo snappy; drop SAOptions for
	// the full JAMS'89 schedule.
	fastSA := bisect.SAOptions{SizeFactor: 8, TempFactor: 0.95, FreezeLim: 4, MaxTemps: 500}
	algorithms := []bisect.Bisector{
		bisect.KL{},
		bisect.SA{Opts: fastSA},
		bisect.Compacted{Inner: bisect.KL{}},
		bisect.Compacted{Inner: bisect.SA{Opts: fastSA}},
	}

	fmt.Printf("%-8s %-8s %-10s\n", "alg", "cut", "time")
	for _, alg := range algorithms {
		r := bisect.NewRand(7) // same stream for every algorithm
		t0 := time.Now()
		b, err := bisect.BestOf{Inner: alg, Starts: 2}.Bisect(g, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-8d %-10s\n", alg.Name(), b.Cut(), time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println("\nCompacted variants should sit at (or near) the planted width;")
	fmt.Println("plain KL/SA typically land far above it on degree-3 graphs.")
}
