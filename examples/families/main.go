// Graph families: how the algorithms behave across qualitatively
// different topologies — the paper's planted models, its KL-adversarial
// ladders, and two modern families (random geometric and small-world)
// that bracket the "has small separators" / "has none" spectrum. The
// spectral lower bound column shows how much certified slack each
// heuristic cut carries.
package main

import (
	"fmt"
	"log"

	bisect "repro"
)

func main() {
	type family struct {
		name string
		make func() (*bisect.Graph, error)
	}
	r := bisect.NewRand(2024)
	geoRad, err := bisect.GeometricRadiusForAvgDegree(1000, 6)
	if err != nil {
		log.Fatal(err)
	}
	families := []family{
		{"breg(1000,8,3)", func() (*bisect.Graph, error) { return bisect.BReg(1000, 8, 3, r) }},
		{"2set(1000,d3,b16)", func() (*bisect.Graph, error) {
			p, err := bisect.TwoSetForAvgDegree(1000, 3, 16)
			if err != nil {
				return nil, err
			}
			return bisect.TwoSet(1000, p, p, 16, r)
		}},
		{"ladder3N(334)", func() (*bisect.Graph, error) { return bisect.Ladder3N(334) }},
		{"grid 32x32", func() (*bisect.Graph, error) { return bisect.Grid(32, 32) }},
		{"geometric(1000,d6)", func() (*bisect.Graph, error) { return bisect.Geometric(1000, geoRad, r) }},
		{"smallworld(1000,4,.1)", func() (*bisect.Graph, error) { return bisect.WattsStrogatz(1000, 4, 0.1, r) }},
		{"gnp(1000,d3)", func() (*bisect.Graph, error) { return bisect.GNP(1000, 3.0/999, r) }},
	}

	fmt.Printf("%-22s %-8s %-8s %-8s %-10s\n", "family", "KL", "CKL", "MLKL", "λ2·n/4")
	for _, f := range families {
		g, err := f.make()
		if err != nil {
			log.Fatal(err)
		}
		if g.N()%2 != 0 {
			log.Fatalf("%s: odd vertex count", f.name)
		}
		row := fmt.Sprintf("%-22s", f.name)
		for _, alg := range []bisect.Bisector{
			bisect.KL{},
			bisect.Compacted{Inner: bisect.KL{}},
			bisect.Multilevel{Inner: bisect.KL{}},
		} {
			b, err := bisect.BestOf{Inner: alg, Starts: 2}.Bisect(g, bisect.NewRand(5))
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("%-8d", b.Cut())
		}
		lb, err := bisect.SpectralLowerBound(g, bisect.SpectralOptions{}, bisect.NewRand(6))
		if err != nil {
			log.Fatal(err)
		}
		row += fmt.Sprintf("%-10.1f", lb)
		fmt.Println(row)
	}
	fmt.Println("\nReading the table: structured families (ladder, grid, geometric)")
	fmt.Println("have small separators and compaction/multilevel close the gap to")
	fmt.Println("them. Gnp at average degree 3 is disconnected (λ₂ = 0 certifies")
	fmt.Println("nothing) yet every balanced cut is large — the model 'may not")
	fmt.Println("distinguish good heuristics from mediocre ones' (paper, Section IV).")
}
