// Example service-client is a standard-library-only client for the
// partitioning daemon (cmd/bisectd, contract in docs/SERVICE.md): it
// uploads a graph, submits a compacted-KL job, subscribes to the job's
// Server-Sent-Events stream, and renders the convergence curve live as
// the run produces it — then prints the final result.
//
//	go run ./cmd/bisectd -addr :8080 &
//	go run ./examples/service-client -addr localhost:8080
//
// Without -addr it starts an in-process daemon, so the example runs
// with zero setup:
//
//	go run ./examples/service-client
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	bisect "repro"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service-client:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := ""
	if len(os.Args) == 3 && os.Args[1] == "-addr" {
		addr = os.Args[2]
	} else if len(os.Args) != 1 {
		return fmt.Errorf("usage: service-client [-addr host:port]")
	}
	if addr == "" {
		// No daemon given: run one in-process on a loopback port.
		srv, err := service.New(service.Config{})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		addr = ln.Addr().String()
		fmt.Printf("started in-process daemon on %s\n\n", addr)
	}
	base := "http://" + strings.TrimPrefix(addr, "http://")

	// A 3-regular graph on 2000 vertices with a planted bisection of
	// width 16 — the paper's hard sparse regime.
	g, err := bisect.BReg(2000, 16, 3, bisect.NewRand(1))
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := bisect.WriteEdgeList(&buf, g); err != nil {
		return err
	}
	var up struct {
		Graph    string `json:"graph"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
	}
	if err := post(base+"/v1/graphs?format=edgelist", "text/plain", buf.Bytes(), &up); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Printf("uploaded %d vertices / %d edges as %.23s…\n", up.Vertices, up.Edges, up.Graph)

	spec, _ := json.Marshal(map[string]any{
		"graph": up.Graph, "algorithm": "ckl", "starts": 4, "seed": 1989,
	})
	var job struct {
		ID string `json:"id"`
	}
	if err := post(base+"/v1/jobs", "application/json", spec, &job); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("submitted job %s (ckl, best of 4 starts, seed 1989)\n\n", job.ID)

	// Stream the convergence curve: each SSE frame is one trace event
	// (docs/OBSERVABILITY.md schema); the stream ends with a terminal
	// frame named after the job's final state. The stream survives a
	// daemon restart: every frame carries an id, so on EOF the client
	// reconnects with Last-Event-ID and resumes where it left off — a
	// persisted daemon re-runs the job deterministically, regenerating
	// the identical event sequence.
	fmt.Printf("%-7s %-12s %6s %10s %10s\n", "start", "event", "index", "cut", "best")
	lastID := ""
	const maxConnects = 30
	for attempt := 0; attempt < maxConnects; attempt++ {
		if attempt > 0 {
			fmt.Fprintf(os.Stderr, "stream interrupted — reconnecting (resume after event %q)\n", lastID)
			time.Sleep(500 * time.Millisecond)
		}
		done, err := streamEvents(base, job.ID, &lastID)
		if done {
			return nil
		}
		if err != nil && attempt == 0 && lastID == "" {
			// The very first connection failed before any frame arrived:
			// that is a bad address or a dead daemon, not a restart.
			return fmt.Errorf("reading stream: %v", err)
		}
	}
	return fmt.Errorf("stream did not complete after %d connections", maxConnects)
}

// streamEvents subscribes to the job's event stream, resuming after
// *lastID when set, renders each frame, and advances *lastID as frames
// arrive. It returns done=true once the terminal frame has been
// rendered; any other return (connection refused while the daemon is
// down, mid-stream EOF from a kill) is a signal to reconnect.
func streamEvents(base, jobID string, lastID *string) (bool, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return false, err
	}
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("events: HTTP %d", resp.StatusCode)
	}
	var eventName, data, frameID string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			frameID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			eventName = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "": // frame complete
			if eventName != "" && data != "" {
				if done := render(eventName, data); done {
					return true, nil
				}
			}
			if frameID != "" {
				*lastID = frameID
			}
			eventName, data, frameID = "", "", ""
		}
	}
	// A scanner error or a clean EOF without a terminal frame both mean
	// the connection died mid-stream; the caller reconnects.
	return false, sc.Err()
}

// render prints one frame of the curve; it returns true on the
// terminal frame (done/failed/cancelled), which carries the result.
func render(eventName, data string) bool {
	switch eventName {
	case "done", "failed", "cancelled":
		var term struct {
			State     string  `json:"state"`
			Cut       int64   `json:"cut"`
			Imbalance int64   `json:"imbalance"`
			Seconds   float64 `json:"seconds"`
			Error     string  `json:"error"`
		}
		json.Unmarshal([]byte(data), &term)
		if term.State != "done" {
			fmt.Printf("\njob ended %s: %s\n", term.State, term.Error)
			return true
		}
		fmt.Printf("\nfinal cut %d (imbalance %d) in %.3fs — planted width was 16\n",
			term.Cut, term.Imbalance, term.Seconds)
		return true
	case "move_batch":
		// Intra-pass samples dominate the stream; the curve reads better
		// without them.
		return false
	default:
		var e struct {
			Start   int    `json:"start"`
			Index   int    `json:"index"`
			Cut     int64  `json:"cut"`
			BestCut int64  `json:"best_cut"`
			Phase   string `json:"phase"`
		}
		json.Unmarshal([]byte(data), &e)
		label := eventName
		if e.Phase != "" {
			label += "/" + e.Phase
		}
		fmt.Printf("%-7d %-12s %6d %10d %10d\n", e.Start, label, e.Index, e.Cut, e.BestCut)
		return false
	}
}

func post(url, contentType string, body []byte, out any) error {
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(buf.Bytes()))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
