// Sparse graphs: the paper's headline result, live.
//
// On random regular graphs of degree 3 the plain algorithms land tens of
// times above the planted bisection width, while the compacted variants
// find it almost exactly (Observation 2: ≥90% improvement on
// Gbreg(5000, b, 3)). On degree-4 graphs everyone does well
// (Observation 1). This example sweeps degree 3 and 4 and prints the
// comparison.
package main

import (
	"fmt"
	"log"
	"time"

	bisect "repro"
)

func main() {
	const vertices = 2000
	const planted = 8

	fastSA := bisect.SAOptions{SizeFactor: 8, TempFactor: 0.95, FreezeLim: 4, MaxTemps: 500}
	rows := []struct {
		degree int
	}{{3}, {4}}

	fmt.Printf("Gbreg(%d, %d, d): planted width %d, best of 2 starts\n\n", vertices, planted, planted)
	fmt.Printf("%-4s %-10s %-10s %-10s %-10s\n", "d", "KL", "CKL", "SA", "CSA")
	for _, row := range rows {
		g, err := bisect.BReg(vertices, planted, row.degree, bisect.NewRand(uint64(row.degree)))
		if err != nil {
			log.Fatal(err)
		}
		cuts := map[string]string{}
		for _, alg := range []bisect.Bisector{
			bisect.KL{},
			bisect.Compacted{Inner: bisect.KL{}},
			bisect.SA{Opts: fastSA},
			bisect.Compacted{Inner: bisect.SA{Opts: fastSA}},
		} {
			r := bisect.NewRand(99)
			t0 := time.Now()
			b, err := bisect.BestOf{Inner: alg, Starts: 2}.Bisect(g, r)
			if err != nil {
				log.Fatal(err)
			}
			cuts[alg.Name()] = fmt.Sprintf("%d/%s", b.Cut(), time.Since(t0).Round(time.Millisecond))
		}
		fmt.Printf("%-4d %-10s %-10s %-10s %-10s\n", row.degree, cuts["kl"], cuts["ckl"], cuts["sa"], cuts["csa"])
	}
	fmt.Println("\ncells are cut/time; compare each plain column with its compacted twin")
}
