// VLSI partitioning: the application domain that motivates the paper.
//
// This example builds a synthetic standard-cell netlist shaped like a
// datapath (bit-slice columns with local nets plus a few global control
// nets), expands it to a graph with the clique model, bisects it with
// compacted Kernighan–Lin, and reports the number of severed *nets* —
// the metric a placement flow actually minimizes.
package main

import (
	"fmt"
	"log"

	bisect "repro"
)

func main() {
	nl := buildDatapath(64, 8) // 64 bit-slices, 8 cells each
	fmt.Printf("netlist: %d cells, %d nets\n", nl.NumCells(), nl.NumNets())

	g, err := nl.CliqueExpand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clique expansion: %d vertices, %d edges, avg degree %.1f\n\n", g.N(), g.M(), g.AvgDegree())

	for _, name := range []string{"random", "kl", "ckl", "mlkl"} {
		alg, err := bisect.NewBisector(name)
		if err != nil {
			log.Fatal(err)
		}
		b, err := bisect.BestOf{Inner: alg, Starts: 2}.Bisect(g, bisect.NewRand(3))
		if err != nil {
			log.Fatal(err)
		}
		cutNets, err := nl.CutNets(sidesOfCells(b, nl.NumCells()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s edge cut %-5d severed nets %-4d (of %d)\n",
			name, b.Cut(), cutNets, nl.NumNets())
	}
	fmt.Println("\nA good bisection keeps each bit-slice column intact, cutting only")
	fmt.Println("the global control nets that span the whole datapath.")
}

// buildDatapath makes a synthetic bit-sliced netlist: `slices` columns of
// `width` cells. Cells within a slice are chained by 2-terminal nets;
// neighboring slices are stitched by carry nets; a handful of global
// control nets touch one cell of every slice.
func buildDatapath(slices, width int) *bisect.Netlist {
	nl := bisect.NewNetlist()
	name := func(s, w int) string { return fmt.Sprintf("u%d_%d", s, w) }
	for s := 0; s < slices; s++ {
		for w := 0; w < width; w++ {
			if err := nl.AddCell(name(s, w), 1); err != nil {
				log.Fatal(err)
			}
		}
	}
	netID := 0
	addNet := func(cells ...string) {
		netID++
		if err := nl.AddNet(fmt.Sprintf("n%d", netID), cells...); err != nil {
			log.Fatal(err)
		}
	}
	// Intra-slice chains.
	for s := 0; s < slices; s++ {
		for w := 0; w+1 < width; w++ {
			addNet(name(s, w), name(s, w+1))
		}
	}
	// Carry chain between adjacent slices.
	for s := 0; s+1 < slices; s++ {
		addNet(name(s, width-1), name(s+1, 0))
	}
	// Global control nets: each touches one cell in every 8th slice.
	for c := 0; c < 4; c++ {
		var cells []string
		for s := c; s < slices; s += 8 {
			cells = append(cells, name(s, c%width))
		}
		if len(cells) >= 2 {
			addNet(cells...)
		}
	}
	return nl
}

// sidesOfCells extracts the side assignment restricted to cell vertices.
func sidesOfCells(b *bisect.Bisection, cells int) []uint8 {
	side := make([]uint8, cells)
	for v := 0; v < cells; v++ {
		side[v] = b.Side(int32(v))
	}
	return side
}
