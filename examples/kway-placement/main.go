// K-way placement: recursive bisection into k regions — how a placement
// flow actually consumes a bisection algorithm (cut the chip in half,
// then each half in half, ...). Also compares graph-based partitioning of
// the clique-expanded netlist against native hypergraph FM on the
// netlist itself.
package main

import (
	"fmt"
	"log"

	bisect "repro"
)

func main() {
	// A 16x16 torus: a mesh-like interconnect with known structure.
	g, err := bisect.Torus(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torus 16x16: %d vertices, %d edges\n\n", g.N(), g.M())

	fmt.Printf("%-4s %-8s %-10s %-10s %-10s\n", "k", "cut", "refined", "imbalance", "parts")
	for _, k := range []int{2, 3, 4, 8} {
		p, err := bisect.RecursiveKWay(g, k, bisect.Compacted{Inner: bisect.KL{}}, bisect.NewRand(7))
		if err != nil {
			log.Fatal(err)
		}
		raw := p.EdgeCut()
		if _, err := bisect.RefineKWayPairs(p, 2); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-8d %-10d %-10.3f %v\n", k, raw, p.EdgeCut(), p.Imbalance(), p.PartWeights())
	}

	// Hypergraph vs graph: a netlist with multi-pin nets, partitioned two
	// ways. The clique expansion approximates nets by edges; hypergraph FM
	// optimizes the true cut-net count.
	nl := bisect.NewNetlist()
	const groups = 24
	for i := 0; i < groups*4; i++ {
		if err := nl.AddCell(fmt.Sprintf("c%d", i), 1); err != nil {
			log.Fatal(err)
		}
	}
	id := 0
	for gI := 0; gI < groups; gI++ {
		// Each group of 4 cells shares one 4-pin net.
		id++
		if err := nl.AddNet(fmt.Sprintf("n%d", id),
			fmt.Sprintf("c%d", 4*gI), fmt.Sprintf("c%d", 4*gI+1),
			fmt.Sprintf("c%d", 4*gI+2), fmt.Sprintf("c%d", 4*gI+3)); err != nil {
			log.Fatal(err)
		}
		// Chain to the next group.
		if gI+1 < groups {
			id++
			if err := nl.AddNet(fmt.Sprintf("n%d", id),
				fmt.Sprintf("c%d", 4*gI+3), fmt.Sprintf("c%d", 4*(gI+1))); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Graph route: clique-expand, bisect, count severed nets.
	cg, err := nl.CliqueExpand()
	if err != nil {
		log.Fatal(err)
	}
	gb, err := bisect.BestOf{Inner: bisect.Compacted{Inner: bisect.KL{}}, Starts: 2}.Bisect(cg, bisect.NewRand(9))
	if err != nil {
		log.Fatal(err)
	}
	sides := make([]uint8, nl.NumCells())
	for v := 0; v < nl.NumCells(); v++ {
		sides[v] = gb.Side(int32(v))
	}
	graphNets, err := nl.CutNets(sides)
	if err != nil {
		log.Fatal(err)
	}

	// Hypergraph route: FM directly on the netlist (best of two starts,
	// matching the graph route's protocol).
	r := bisect.NewRand(9)
	var hres bisect.HFMResult
	for s := 0; s < 2; s++ {
		cand, err := bisect.HFMBisect(nl, bisect.HFMOptions{}, r)
		if err != nil {
			log.Fatal(err)
		}
		if s == 0 || cand.CutNets < hres.CutNets {
			hres = cand
		}
	}

	fmt.Printf("\nnetlist bisection (%d cells, %d nets):\n", nl.NumCells(), nl.NumNets())
	fmt.Printf("  clique expansion + CKL : %d cut nets\n", graphNets)
	fmt.Printf("  hypergraph FM          : %d cut nets\n", hres.CutNets)
	fmt.Println("\nhypergraph FM optimizes the net metric directly; the clique route")
	fmt.Println("optimizes an edge proxy, which can over-count multi-pin nets.")
}
