// Annealing-schedule tuning: Section VII of the paper notes that "fine
// tuning of the annealing schedule can be a big job" and that quick
// schedules terminate "usually at a far from optimal solution".
//
// This example sweeps the two schedule knobs that trade time for quality
// (SIZEFACTOR, the trials per temperature, and TEMPFACTOR, the cooling
// rate) on one sparse planted instance and prints the cut/time frontier,
// reproducing that qualitative trade-off.
package main

import (
	"fmt"
	"log"
	"time"

	bisect "repro"
)

func main() {
	g, err := bisect.BReg(1000, 8, 3, bisect.NewRand(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Gbreg(1000, 8, 3), planted width 8, single SA run per cell\n\n")
	sizeFactors := []int{1, 4, 16}
	tempFactors := []float64{0.8, 0.9, 0.95}

	fmt.Printf("%-12s", "size\\cool")
	for _, tf := range tempFactors {
		fmt.Printf("%-16.2f", tf)
	}
	fmt.Println()
	for _, sf := range sizeFactors {
		fmt.Printf("%-12d", sf)
		for _, tf := range tempFactors {
			opts := bisect.SAOptions{SizeFactor: sf, TempFactor: tf}
			r := bisect.NewRand(11)
			t0 := time.Now()
			b, err := (bisect.SA{Opts: opts}).Bisect(g, r)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s", fmt.Sprintf("%d/%s", b.Cut(), time.Since(t0).Round(time.Millisecond)))
		}
		fmt.Println()
	}
	fmt.Println("\ncells are cut/time: slower schedules (right and down) buy quality;")
	fmt.Println("compaction (see examples/sparse) buys more of it for less time.")
}
