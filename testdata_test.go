package bisect_test

// Tests over the shipped sample files in testdata/, which double as
// format documentation for users.

import (
	"os"
	"testing"

	bisect "repro"
)

func TestSampleGraphFile(t *testing.T) {
	f, err := os.Open("testdata/breg200.el")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := bisect.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 || !g.IsRegular(3) {
		t.Fatalf("sample graph: n=%d regular3=%v", g.N(), g.IsRegular(3))
	}
	// The sample was generated as BReg(200, 8, 3, seed 1989): CKL should
	// find the planted width.
	alg := bisect.Compacted{Inner: bisect.KL{}}
	b, err := bisect.BestOf{Inner: alg, Starts: 2}.Bisect(g, bisect.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() > 8 {
		t.Fatalf("sample graph cut %d, planted 8", b.Cut())
	}
}

func TestSampleNetlistFile(t *testing.T) {
	f, err := os.Open("testdata/sample.netlist")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := bisect.ParseNetlist(f)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 6 || nl.NumNets() != 7 {
		t.Fatalf("sample netlist: cells=%d nets=%d", nl.NumCells(), nl.NumNets())
	}
	best := 1 << 30
	r := bisect.NewRand(2)
	for s := 0; s < 4; s++ {
		res, err := bisect.HFMBisect(nl, bisect.HFMOptions{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.CutNets < best {
			best = res.CutNets
		}
	}
	if best != 1 {
		t.Fatalf("sample netlist best cut %d, want 1 (the bridge net)", best)
	}
}
