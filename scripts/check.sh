#!/bin/sh
# Tier-2 verification gate. Tier 1 is `go build ./... && go test ./...`;
# this script adds vet, the race detector over the whole module, and a
# quick machine-readable benchmark snapshot so a perf regression or a
# reappearing steady-state allocation is visible before merge.
#
# Usage: scripts/check.sh [output.json]
#   output.json  where to write the quick benchmark snapshot
#                (default: bench-check.json in the repo root, gitignored
#                territory — committed snapshots are BENCH_N.json,
#                written by `go run ./cmd/bench`; see docs/PERFORMANCE.md)
set -eu

cd "$(dirname "$0")/.."
out="${1:-bench-check.json}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go run ./cmd/bench -quick  (snapshot -> $out)"
go run ./cmd/bench -quick -o "$out"

# The quick suite records allocs_per_op for the steady-state KL/FM
# passes; both must be zero (the alloc regression tests enforce the
# same bound under `go test`, this is the belt to their suspenders).
awk '
  /"name": ".*_pass_steady_/ { steady = 1 }
  steady && /"allocs_per_op":/ {
    gsub(/[^0-9]/, "", $2)
    if ($2 + 0 != 0) { bad = 1 }
    steady = 0
  }
  END { exit bad }
' "$out" || { echo "FAIL: steady-state pass allocates (see $out)"; exit 1; }

echo "OK: vet, build, race tests, and quick benchmarks all passed"
