#!/bin/sh
# Tier-2 verification gate. Tier 1 is `go build ./... && go test ./...`;
# this script adds vet, the race detector over the whole module, and a
# quick machine-readable benchmark snapshot so a perf regression or a
# reappearing steady-state allocation is visible before merge.
#
# Usage: scripts/check.sh [output.json] [baseline.json]
#   output.json    where to write the quick benchmark snapshot
#                  (default: bench-check.json in the repo root, gitignored
#                  territory — committed snapshots are BENCH_N.json,
#                  written by `go run ./cmd/bench`; see docs/PERFORMANCE.md)
#   baseline.json  optional committed snapshot (e.g. BENCH_2.json) to diff
#                  the fresh snapshot against with cmd/benchdiff; the gate
#                  fails on >10% regression in any recorded series. Compare
#                  against a baseline measured on the same machine — the
#                  committed snapshots record their environment in "notes".
set -eu

cd "$(dirname "$0")/.."
out="${1:-bench-check.json}"
baseline="${2:-}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The parallel paths (N goroutines annealing over per-chain workspaces;
# parallel multi-start over per-worker compaction arenas; the poisoned-
# start recovery path, where one panicking start must neither deadlock
# the pool nor corrupt the survivors' aggregation) get extra
# race-detector exercise beyond the single pass the full run gives
# them: repeated runs vary goroutine interleavings.
echo "==> go test -race -count=3 -run 'TestParallel' ./internal/core/"
go test -race -count=3 -run 'TestParallel' ./internal/core/

# The service daemon is the most concurrency-dense package in the tree
# (worker pool, SSE streamers, long-pollers, and HTTP handlers all share
# job state): repeated race runs vary the interleavings. This also
# re-runs TestLoadSmoke — 200 concurrent clients against an in-process
# daemon, no lost or drifting jobs — under the race detector.
echo "==> go test -race -count=2 ./internal/service/ (daemon race + load smoke)"
go test -race -count=2 ./internal/service/

# Crash-safety integration gate: a checkpointing campaign killed with
# SIGKILL mid-run (subprocess, no handlers) must resume from the atomic
# checkpoint file and agree cut-for-cut with an uninterrupted run.
echo "==> go test -run 'TestCheckpointSurvivesSIGKILL' ./internal/harness/ (kill-and-resume gate)"
go test -count=1 -run 'TestCheckpointSurvivesSIGKILL' ./internal/harness/

# Fault-injection matrix: every faultfs fault kind (clean and torn
# ENOSPC writes, fsync and rename EIO, read-side bit flips) against the
# fsx atomic-write protocol and the CRC trailer layer — committed files
# never corrupt, injected corruption is always caught and typed.
echo "==> go test ./internal/faultfs/ ./internal/fsx/ (fault-injection matrix + CRC layer)"
go test -count=1 ./internal/faultfs/ ./internal/fsx/

# Corruption quarantine: a damaged job record or graph file on disk
# must quarantine on restart (typed error, evidence preserved, the rest
# of the state recovered), and a persistence failure must degrade
# serving instead of failing jobs.
echo "==> go test -run 'TestCorrupt|TestDegraded|TestReadyz|TestCheckpointCorrupt|TestCheckpointGarbage|TestCheckpointWriteFailure' (quarantine + degraded-mode gates)"
go test -count=1 -run 'TestCorrupt|TestDegraded|TestReadyz' ./internal/service/
go test -count=1 -run 'TestCheckpointCorrupt|TestCheckpointGarbage|TestCheckpointWriteFailure' ./internal/harness/

# Chaos gate: a real daemon subprocess under a seeded fault schedule,
# SIGKILLed mid-flight across several incarnations, then audited — zero
# lost acks, zero panics, zero silently-accepted corrupt records, every
# surviving result byte-identical to the fault-free run. Reproduce a
# failure with CHAOS_SEED=N scripts/check.sh (or -chaos-seed N directly;
# see docs/ROBUSTNESS.md "Fault injection and chaos testing").
echo "==> go test -run 'TestChaos' ./internal/service/ -chaos-seed ${CHAOS_SEED:-1} (chaos gate)"
go test -count=1 -run 'TestChaos' ./internal/service/ -chaos-seed "${CHAOS_SEED:-1}"

# Parser robustness: a short fuzz smoke per reader. Malformed input must
# error — never panic, never wrap ids into range, never OOM (go test
# runs the seed corpora; the smoke explores a little beyond them).
# FuzzReadBCSR covers the binary header boundaries of the lifted vertex
# cap: hostile n/m counts and int32-offset overflows into the wide path.
for target in FuzzReadEdgeList FuzzReadMETIS FuzzUnmarshalGraph FuzzCompactCSREquivalence FuzzReadBCSR; do
  echo "==> go test -fuzz=$target -fuzztime=10s ./internal/graph/"
  go test -run "^$target\$" -fuzz="^$target\$" -fuzztime=10s ./internal/graph/
done

# The sharded refinement pass body (per-move gain updates, the FM
# proposal reduce, the parallel rollback) across goroutine
# interleavings: GOMAXPROCS=2 forces real preemption between shard
# workers on any host, and -count=2 varies the schedule.
echo "==> GOMAXPROCS=2 go test -race -count=2 (sharded pass kernels + determinism matrix)"
GOMAXPROCS=2 go test -race -count=2 \
  -run 'TestSharded|TestDeterminismMatrix|TestRangeCursor' \
  ./internal/partition/ ./internal/fm/ ./internal/kl/ ./internal/core/ ./internal/spectral/

# Million-vertex pipeline smoke at 10^5 scale: generate a BCSR file,
# memory-map it, and run multilevel KL with the sharded within-run
# kernels engaged (threads > 1, instance above ParallelMinVertices) —
# all under the race detector, which is the only place the production
# shard interleavings get raced at realistic sizes. The same instance
# is then bisected at -threads 1 and -threads 4 and the two side
# assignments diffed byte-for-byte: the thread-count invariance
# contract, end to end through the CLI.
echo "==> gengraph -format csr + bisect -threads 4 under -race (mmap + parallel kernel smoke)"
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/gengraph -model gnp -n 100000 -deg 4 -seed 7 -format csr -out "$smokedir/smoke.csr"
go run -race ./cmd/bisect -in "$smokedir/smoke.csr" -alg mlkl -starts 1 -threads 4 -validate \
  -out "$smokedir/sides.t4"
echo "==> bisect -threads 1 vs -threads 4: sides must be identical"
go run ./cmd/bisect -in "$smokedir/smoke.csr" -alg mlkl -starts 1 -threads 1 -validate \
  -out "$smokedir/sides.t1"
cmp "$smokedir/sides.t1" "$smokedir/sides.t4" \
  || { echo "FAIL: -threads changed the bisection (sides.t1 != sides.t4)"; exit 1; }

# The same end-to-end smoke for the spectral-initialized multilevel
# algorithm: the coarsest-level Lanczos Fiedler solve (sharded matvec,
# fixed-block reductions) runs under the race detector at -threads 4,
# and its sides must be byte-identical to the serial run — the
# determinism contract of the spectral workspace, through the CLI.
echo "==> bisect -alg mlkl+spec -threads 4 under -race vs -threads 1 (spectral smoke)"
go run -race ./cmd/bisect -in "$smokedir/smoke.csr" -alg mlkl+spec -starts 1 -threads 4 -validate \
  -out "$smokedir/sides.spec.t4"
go run ./cmd/bisect -in "$smokedir/smoke.csr" -alg mlkl+spec -starts 1 -threads 1 -validate \
  -out "$smokedir/sides.spec.t1"
cmp "$smokedir/sides.spec.t1" "$smokedir/sides.spec.t4" \
  || { echo "FAIL: -threads changed the spectral bisection (sides.spec.t1 != sides.spec.t4)"; exit 1; }

# The compaction arena's zero-alloc contract: matching, contraction,
# and the full warm compact/project cycle must not touch the heap in
# steady state — including the sharded parallel matching and parallel
# contraction paths (TestParallelMatchSteadyAllocs and
# TestParallelContractSteadyAllocs match the same pattern). The bench
# gate below checks the same property from the benchmark side.
echo "==> go test -run 'SteadyAllocs' ./internal/coarsen/ ./internal/matching/ ./internal/partition/ ./internal/fm/ ./internal/kl/ ./internal/spectral/ (alloc contract, serial + sharded)"
go test -count=1 -run 'SteadyAllocs' ./internal/coarsen/ ./internal/matching/ ./internal/partition/ ./internal/fm/ ./internal/kl/ ./internal/spectral/

echo "==> go run ./cmd/bench -quick  (snapshot -> $out)"
go run ./cmd/bench -quick -o "$out"

# The quick suite records allocs_per_op for every steady-state row —
# the KL/FM passes, the SA refine loop, and the warm compaction cycle;
# all must be zero (the alloc regression tests enforce the same bound
# under `go test`, this is the belt to their suspenders).
awk '
  /"name": ".*_steady_/ { steady = 1 }
  steady && /"allocs_per_op":/ {
    gsub(/[^0-9]/, "", $2)
    if ($2 + 0 != 0) { bad = 1 }
    steady = 0
  }
  END { exit bad }
' "$out" || { echo "FAIL: steady-state benchmark allocates (see $out)"; exit 1; }

if [ -n "$baseline" ]; then
  echo "==> go run ./cmd/benchdiff $baseline $out"
  go run ./cmd/benchdiff "$baseline" "$out"
fi

echo "OK: vet, build, race tests, daemon load smoke, kill-and-resume, fault/chaos gates, fuzz smoke, and quick benchmarks all passed"
