package bisect_test

import (
	"bytes"
	"testing"

	bisect "repro"
)

// The façade tests exercise the public API exactly as the README's
// quickstart does, so a user following the docs is covered by CI.

func TestQuickstartFlow(t *testing.T) {
	g, err := bisect.BReg(200, 8, 3, bisect.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	alg, err := bisect.NewBisector("ckl")
	if err != nil {
		t.Fatal(err)
	}
	b, err := alg.Bisect(g, bisect.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if b.Imbalance() != 0 {
		t.Fatalf("imbalance %d", b.Imbalance())
	}
	if b.Cut() <= 0 || b.Cut() > int64(g.M()) {
		t.Fatalf("cut %d out of range", b.Cut())
	}
}

func TestAllRegisteredBisectorsViaFacade(t *testing.T) {
	g, err := bisect.Grid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range bisect.BisectorNames() {
		if name == "sa" || name == "csa" {
			continue // covered with a fast schedule below
		}
		alg, err := bisect.NewBisector(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := alg.Bisect(g, bisect.NewRand(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	fast := bisect.SA{Opts: bisect.SAOptions{SizeFactor: 2, TempFactor: 0.85, FreezeLim: 2, MaxTemps: 50}}
	for _, alg := range []bisect.Bisector{fast, bisect.Compacted{Inner: fast}} {
		b, err := alg.Bisect(g, bisect.NewRand(4))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
}

func TestFacadeGenerators(t *testing.T) {
	r := bisect.NewRand(5)
	checks := []struct {
		name string
		g    *bisect.Graph
		err  error
	}{}
	add := func(name string, g *bisect.Graph, err error) {
		checks = append(checks, struct {
			name string
			g    *bisect.Graph
			err  error
		}{name, g, err})
	}
	g1, e1 := bisect.GNP(50, 0.1, r)
	add("gnp", g1, e1)
	g2, e2 := bisect.TwoSet(60, 0.1, 0.1, 5, r)
	add("twoset", g2, e2)
	g3, e3 := bisect.BReg(60, 4, 3, r)
	add("breg", g3, e3)
	g4, e4 := bisect.Path(5)
	add("path", g4, e4)
	g5, e5 := bisect.Cycle(5)
	add("cycle", g5, e5)
	g6, e6 := bisect.CycleCollection([]int{3, 4})
	add("cycles", g6, e6)
	g7, e7 := bisect.Ladder(5)
	add("ladder", g7, e7)
	g8, e8 := bisect.Ladder3N(5)
	add("ladder3n", g8, e8)
	g9, e9 := bisect.Grid(3, 4)
	add("grid", g9, e9)
	g10, e10 := bisect.Torus(3, 3)
	add("torus", g10, e10)
	g11, e11 := bisect.CompleteBinaryTree(7)
	add("btree", g11, e11)
	g12, e12 := bisect.Hypercube(3)
	add("hypercube", g12, e12)
	g13, e13 := bisect.Complete(5)
	add("complete", g13, e13)
	g14, e14 := bisect.CompleteBipartite(2, 3)
	add("bipartite", g14, e14)
	g15, e15 := bisect.Caterpillar(3, 2)
	add("caterpillar", g15, e15)
	g16, e16 := bisect.RandomRegular(10, 3, r)
	add("regular", g16, e16)
	for _, c := range checks {
		if c.err != nil {
			t.Fatalf("%s: %v", c.name, c.err)
		}
		if err := c.g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestFacadeIO(t *testing.T) {
	g, err := bisect.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bisect.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := bisect.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatal("edge-list round trip mismatch")
	}
	buf.Reset()
	if err := bisect.WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := bisect.ReadMETIS(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := bisect.MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bisect.UnmarshalGraph(data); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExactAndPrimitives(t *testing.T) {
	g, err := bisect.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	w, side, err := bisect.ExactBisectionWidth(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 || bisect.CutOf(g, side) != 2 {
		t.Fatalf("exact width %d", w)
	}
	cw, err := bisect.CycleCollectionWidth(g)
	if err != nil || cw != 2 {
		t.Fatalf("cycle width %d, %v", cw, err)
	}
	r := bisect.NewRand(6)
	mate := bisect.RandomMaximalMatching(g, r)
	c, err := bisect.Contract(g, mate)
	if err != nil {
		t.Fatal(err)
	}
	if c.Coarse.TotalVertexWeight() != 8 {
		t.Fatal("contraction lost weight")
	}
	hem := bisect.HeavyEdgeMatching(g, r)
	if len(hem) != 8 {
		t.Fatal("heavy-edge matching length")
	}
	b := bisect.NewRandomBisection(g, r)
	bisect.RepairBalance(b, 0)
	if b.Imbalance() != 0 {
		t.Fatal("repair failed")
	}
}

func TestFacadeNetlist(t *testing.T) {
	nl := bisect.NewNetlist()
	if err := nl.AddCell("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddCell("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddNet("n", "a", "b"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bisect.WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := bisect.ParseNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nl2.NumCells() != 2 || nl2.NumNets() != 1 {
		t.Fatal("netlist round trip mismatch")
	}
	g, err := nl2.CliqueExpand()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatal("clique expansion mismatch")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// k-way, parallel best-of, tree DP, spectral bound, hypergraph FM —
	// all through the public API.
	g, err := bisect.Grid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bisect.RecursiveKWay(g, 4, bisect.KL{}, bisect.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 4 || p.EdgeCut() <= 0 {
		t.Fatalf("kway: %v", p)
	}
	pb, err := bisect.ParallelBestOf{Inner: bisect.KL{}, Starts: 3}.Bisect(g, bisect.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if pb.Imbalance() != 0 {
		t.Fatal("parallel best-of unbalanced")
	}
	tree, err := bisect.CompleteBinaryTree(14)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := bisect.TreeBisectionWidth(tree)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("tree width %d, want 1", w)
	}
	l2, err := bisect.Lambda2(g, bisect.SpectralOptions{}, bisect.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if l2 <= 0 {
		t.Fatalf("λ₂ = %v on a connected graph", l2)
	}
	lb, err := bisect.SpectralLowerBound(g, bisect.SpectralOptions{}, bisect.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 || lb > 8.01 {
		t.Fatalf("spectral bound %v vs known width 8", lb)
	}
	nl := bisect.NewNetlist()
	for _, c := range []string{"a", "b", "c", "d"} {
		if err := nl.AddCell(c, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := nl.AddNet("n1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddNet("n2", "c", "d"); err != nil {
		t.Fatal(err)
	}
	res, err := bisect.HFMBisect(nl, bisect.HFMOptions{}, bisect.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != 0 {
		t.Fatalf("hfm cut %d, want 0", res.CutNets)
	}
	if _, err := bisect.HFMRefine(nl, res.Sides, bisect.HFMOptions{}); err != nil {
		t.Fatal(err)
	}
	sub, _, err := bisect.InducedSubgraph(g, []int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 {
		t.Fatal("induced size")
	}
	perm := make([]int32, g.N())
	for i := range perm {
		perm[i] = int32(g.N() - 1 - i)
	}
	if _, err := bisect.PermuteGraph(g, perm); err != nil {
		t.Fatal(err)
	}
	if _, err := bisect.UnionGraphs(g, sub); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGeometricAndRandomNetlist(t *testing.T) {
	r := bisect.NewRand(11)
	rad, err := bisect.GeometricRadiusForAvgDegree(500, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := bisect.Geometric(500, rad, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Geometric graphs have genuinely small separators; CKL should beat a
	// random cut by a wide margin.
	randCut := bisect.NewRandomBisection(g, r).Cut()
	b, err := bisect.Compacted{Inner: bisect.KL{}}.Bisect(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut()*4 > randCut {
		t.Fatalf("CKL cut %d vs random %d: geometric structure not exploited", b.Cut(), randCut)
	}

	nl, err := bisect.RandomNetlist(bisect.RandomNetlistOptions{Cells: 80, Nets: 100, MaxPins: 4, Locality: 0.8}, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bisect.HFMBisect(nl, bisect.HFMOptions{}, r)
	if err != nil {
		t.Fatal(err)
	}
	check, err := nl.CutNets(res.Sides)
	if err != nil {
		t.Fatal(err)
	}
	if check != res.CutNets {
		t.Fatalf("hfm reported %d cut nets, recount %d", res.CutNets, check)
	}
}

func TestFacadeRemainingWrappers(t *testing.T) {
	r := bisect.NewRand(13)
	p, err := bisect.TwoSetForAvgDegree(200, 3, 8)
	if err != nil || p <= 0 {
		t.Fatalf("TwoSetForAvgDegree: %v %v", p, err)
	}
	sw, err := bisect.WattsStrogatz(60, 4, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := bisect.Grid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := bisect.RecursiveKWay(g, 4, bisect.RandomBisector{}, r)
	if err != nil {
		t.Fatal(err)
	}
	before := kp.EdgeCut()
	if _, err := bisect.RefineKWayPairs(kp, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := bisect.DirectRefineKWay(kp, bisect.KWayDirectRefineOptions{}); err != nil {
		t.Fatal(err)
	}
	if kp.EdgeCut() > before {
		t.Fatalf("refinement worsened: %d -> %d", before, kp.EdgeCut())
	}
}

func TestFacadeBisectionConstruction(t *testing.T) {
	g, err := bisect.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bisect.NewBisection(g, []uint8{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cut() != 1 {
		t.Fatalf("cut %d", b.Cut())
	}
	if _, err := bisect.NewBisector("nope"); err == nil {
		t.Fatal("unknown bisector accepted")
	}
}
