package bisect

import (
	"context"
	"io"
	iofs "io/fs"

	"repro/internal/anneal"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fm"
	"repro/internal/fsx"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hfm"
	"repro/internal/kl"
	"repro/internal/kway"
	"repro/internal/matching"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/runctl"
	"repro/internal/spectral"
	"repro/internal/trace"
)

// Core types, re-exported from the internal packages. Aliases keep the
// public API stable while the implementation lives under internal/.
type (
	// Graph is an immutable weighted undirected simple graph.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// Edge is a half-edge (head vertex and weight).
	Edge = graph.Edge
	// Bisection is a mutable two-way partition with incremental cut and
	// gain maintenance.
	Bisection = partition.Bisection
	// Bisector is the algorithm interface: Name() and Bisect().
	Bisector = core.Bisector
	// RefinableBisector additionally improves an existing bisection.
	RefinableBisector = core.RefinableBisector
	// Rand is the deterministic random source used by every algorithm.
	Rand = rng.Rand
	// Netlist is a VLSI netlist (cells and multi-terminal nets).
	Netlist = netlist.Netlist

	// KLOptions configures Kernighan–Lin.
	KLOptions = kl.Options
	// KLStats reports what a Kernighan–Lin run did (passes, swaps,
	// scanned pairs, cut trajectory).
	KLStats = kl.Stats
	// KLRefiner is the reusable zero-allocation workspace for KL passes.
	KLRefiner = kl.Refiner
	// FMRefiner is the reusable zero-allocation workspace for FM passes.
	FMRefiner = fm.Refiner
	// SAOptions configures simulated annealing (JAMS'89 schedule).
	SAOptions = anneal.Options
	// FMOptions configures Fiduccia–Mattheyses.
	FMOptions = fm.Options
	// SpectralOptions configures spectral bisection.
	SpectralOptions = spectral.Options
	// MultilevelOptions configures the recursive compaction driver.
	MultilevelOptions = coarsen.MultilevelOptions

	// KL is plain Kernighan–Lin (Bisector).
	KL = core.KL
	// SA is plain simulated annealing (Bisector).
	SA = core.SA
	// FM is plain Fiduccia–Mattheyses (Bisector).
	FM = core.FM
	// Spectral is Fiedler-vector bisection (Bisector).
	Spectral = core.Spectral
	// Compacted wraps a RefinableBisector with the paper's compaction.
	Compacted = core.Compacted
	// Multilevel wraps a RefinableBisector with recursive compaction.
	Multilevel = core.Multilevel
	// BestOf repeats a Bisector and keeps the best cut.
	BestOf = core.BestOf
	// ParallelBestOf runs independent starts concurrently.
	ParallelBestOf = core.ParallelBestOf
	// KWayPartition is a k-way vertex partition (see RecursiveKWay).
	KWayPartition = kway.Partition
	// HFMOptions configures hypergraph FM on netlists.
	HFMOptions = hfm.Options
	// HFMResult reports a hypergraph FM run.
	HFMResult = hfm.Result
	// HFMWorkspace is reusable hypergraph-FM storage (set it on
	// HFMOptions.Workspace to amortize allocations across runs on the
	// same or different netlists).
	HFMWorkspace = hfm.Workspace
	// RandomBisector assigns sides uniformly at random under balance.
	RandomBisector = core.Random
	// GreedyBisector grows one side by BFS.
	GreedyBisector = core.Greedy

	// TraceEvent is one observability event (see docs/OBSERVABILITY.md
	// for the schema).
	TraceEvent = trace.Event
	// TraceEventType discriminates trace events.
	TraceEventType = trace.Type
	// TraceObserver receives trace events; nil means no tracing at zero
	// cost.
	TraceObserver = trace.Observer
	// TraceRecorder is a ring-buffered in-memory observer.
	TraceRecorder = trace.Recorder
	// TraceJSONL streams events as JSON Lines (deterministic by default).
	TraceJSONL = trace.JSONL
	// TraceCSV flattens events into a CSV convergence-curve table.
	TraceCSV = trace.CSVCurve
	// ObservableBisector is a Bisector whose runs can report trace
	// events.
	ObservableBisector = core.Observable
)

// NewRand returns a deterministic random source (lagged-Fibonacci) seeded
// with seed.
func NewRand(seed uint64) *Rand { return rng.NewFib(seed) }

// RunKL bisects g with Kernighan–Lin from a random balanced start and
// also returns the run statistics (the KL Bisector discards them).
func RunKL(g *Graph, opts KLOptions, r *Rand) (*Bisection, KLStats, error) {
	return kl.Run(g, opts, r)
}

// NewKLRefiner returns a reusable KL workspace; pass it via
// KLOptions.Workspace to make repeated runs allocation-free. See
// docs/PERFORMANCE.md.
func NewKLRefiner() *KLRefiner { return kl.NewRefiner() }

// NewFMRefiner returns a reusable FM workspace; pass it via
// FMOptions.Workspace to make repeated runs allocation-free.
func NewFMRefiner() *FMRefiner { return fm.NewRefiner() }

// WithWorkspace attaches a private reusable refinement workspace to b
// if its algorithm supports one (KL, FM, and the drivers composing
// them); otherwise returns b unchanged. The returned bisector is not
// safe for concurrent use.
func WithWorkspace(b Bisector) Bisector { return core.WithWorkspace(b) }

// WithParallel attaches a within-run parallel degree to b if its
// algorithm supports sharded internal kernels (matching, contraction,
// gain-bucket filling); otherwise (or for degree ≤ 1) returns b
// unchanged. Results are deterministic: every degree ≥ 2 produces the
// same bisection, and the parallel paths only engage on graphs large
// enough to amortize the coordination (see docs/PERFORMANCE.md).
func WithParallel(b Bisector, degree int) Bisector { return core.WithParallel(b, degree) }

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewBisector returns the named algorithm with default options.
// Recognized names: random, greedy, kl, sa, fm, spectral, ckl, csa,
// cfm, mlkl, mlfm, mlsa, and the spectral-initialized multilevel
// variants mlkl+spec, mlfm+spec, mlsa+spec (Lanczos Fiedler split at
// the coarsest level instead of a random one; see docs/ALGORITHMS.md).
func NewBisector(name string) (Bisector, error) { return core.New(name) }

// BisectorNames lists the registry's algorithm names.
func BisectorNames() []string { return core.Names() }

// Observability (docs/OBSERVABILITY.md).

// WithObserver attaches obs to b if b is observable; otherwise (or when
// obs is nil) it returns b unchanged. Attaching an observer never
// changes the bisections an algorithm produces.
func WithObserver(b Bisector, obs TraceObserver) Bisector { return core.WithObserver(b, obs) }

// NewTraceRecorder returns a ring-buffered in-memory observer keeping at
// most capacity events (capacity ≤ 0 = unbounded).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// NewTraceJSONL returns an observer streaming one JSON object per event
// line to w; output is byte-identical across runs of the same seed
// unless its Timing field is set.
func NewTraceJSONL(w io.Writer) *TraceJSONL { return trace.NewJSONL(w) }

// NewTraceCSV returns an observer writing a flat CSV convergence-curve
// table to w; call Flush when done.
func NewTraceCSV(w io.Writer) *TraceCSV { return trace.NewCSVCurve(w) }

// MultiTraceObserver fans events out to every non-nil argument.
func MultiTraceObserver(obs ...TraceObserver) TraceObserver { return trace.Multi(obs...) }

// NewBisection wraps an explicit side assignment (entries 0/1).
func NewBisection(g *Graph, side []uint8) (*Bisection, error) { return partition.New(g, side) }

// NewRandomBisection returns a random balanced bisection.
func NewRandomBisection(g *Graph, r *Rand) *Bisection { return partition.NewRandom(g, r) }

// CutOf computes the weighted cut of a side assignment.
func CutOf(g *Graph, side []uint8) int64 { return partition.CutOf(g, side) }

// Graph generators (the paper's models and special families).

// GNP samples the Erdős–Rényi model 𝒢np(n, p).
func GNP(n int, p float64, r *Rand) (*Graph, error) { return gen.GNP(n, p, r) }

// StreamGNP enumerates the edges of 𝒢np(n, p) without materializing the
// graph (O(1) working memory); see gengraph's streaming mode. Two
// passes over sources with the same seed visit the identical edge set.
func StreamGNP(n int, p float64, r *Rand, emit func(u, v int32) error) (int64, error) {
	return gen.StreamGNP(n, p, r, emit)
}

// TwoSet samples the planted-bisection model 𝒢2set(2n, pA, pB, bis).
func TwoSet(twoN int, pA, pB float64, bis int, r *Rand) (*Graph, error) {
	return gen.TwoSet(twoN, pA, pB, bis, r)
}

// TwoSetForAvgDegree converts a target average degree to the internal
// edge probability of TwoSet.
func TwoSetForAvgDegree(twoN int, avgDeg float64, bis int) (float64, error) {
	return gen.TwoSetForAvgDegree(twoN, avgDeg, bis)
}

// BReg samples 𝒢breg(2n, b, d): d-regular with planted bisection width b.
func BReg(twoN, b, d int, r *Rand) (*Graph, error) { return gen.BReg(twoN, b, d, r) }

// RandomRegular samples a uniform simple d-regular graph.
func RandomRegular(n, d int, r *Rand) (*Graph, error) { return gen.RandomRegular(n, d, r) }

// Path returns the path graph on n vertices.
func Path(n int) (*Graph, error) { return gen.Path(n) }

// Cycle returns the cycle on n ≥ 3 vertices.
func Cycle(n int) (*Graph, error) { return gen.Cycle(n) }

// CycleCollection returns a disjoint union of cycles.
func CycleCollection(sizes []int) (*Graph, error) { return gen.CycleCollection(sizes) }

// Ladder returns the 2×k ladder graph.
func Ladder(k int) (*Graph, error) { return gen.Ladder(k) }

// Ladder3N returns the paper's 3N-vertex ladder (midpoint rungs).
func Ladder3N(n int) (*Graph, error) { return gen.Ladder3N(n) }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) (*Graph, error) { return gen.Grid(rows, cols) }

// Torus returns the rows×cols torus.
func Torus(rows, cols int) (*Graph, error) { return gen.Torus(rows, cols) }

// CompleteBinaryTree returns the heap-layout binary tree on n vertices.
func CompleteBinaryTree(n int) (*Graph, error) { return gen.CompleteBinaryTree(n) }

// Hypercube returns the dim-dimensional hypercube.
func Hypercube(dim int) (*Graph, error) { return gen.Hypercube(dim) }

// Complete returns K_n.
func Complete(n int) (*Graph, error) { return gen.Complete(n) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) (*Graph, error) { return gen.CompleteBipartite(a, b) }

// Caterpillar returns a caterpillar tree.
func Caterpillar(spine, legs int) (*Graph, error) { return gen.Caterpillar(spine, legs) }

// WattsStrogatz samples a small-world graph (ring lattice with rewiring).
func WattsStrogatz(n, k int, beta float64, r *Rand) (*Graph, error) {
	return gen.WattsStrogatz(n, k, beta, r)
}

// Geometric samples a random geometric graph on the unit square.
func Geometric(n int, radius float64, r *Rand) (*Graph, error) { return gen.Geometric(n, radius, r) }

// GeometricRadiusForAvgDegree converts a target average degree to a
// Geometric radius.
func GeometricRadiusForAvgDegree(n int, avgDeg float64) (float64, error) {
	return gen.GeometricRadiusForAvgDegree(n, avgDeg)
}

// RandomNetlistOptions parameterizes RandomNetlist.
type RandomNetlistOptions = netlist.RandomOptions

// RandomNetlist generates a synthetic netlist with Rent-style locality.
func RandomNetlist(opts RandomNetlistOptions, r *Rand) (*Netlist, error) {
	return netlist.Random(opts, r)
}

// Serialization.

// WriteEdgeList writes g in the native edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadEdgeList parses the native edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteMETIS writes g in the METIS adjacency format.
func WriteMETIS(w io.Writer, g *Graph) error { return graph.WriteMETIS(w, g) }

// ReadMETIS parses the METIS adjacency format.
func ReadMETIS(r io.Reader) (*Graph, error) { return graph.ReadMETIS(r) }

// MarshalGraph encodes g as JSON.
func MarshalGraph(g *Graph) ([]byte, error) { return graph.MarshalGraph(g) }

// UnmarshalGraph decodes JSON produced by MarshalGraph.
func UnmarshalGraph(data []byte) (*Graph, error) { return graph.UnmarshalGraph(data) }

// CSRFile is a Graph backed by a memory-mapped on-disk CSR image; see
// OpenCSRFile. Close releases the mapping.
type CSRFile = graph.CSRFile

// WriteCSRFile writes g in the binary CSR format (BCSR), the zero-copy
// on-disk layout documented in docs/PERFORMANCE.md.
func WriteCSRFile(w io.Writer, g *Graph) error { return graph.WriteCSRFile(w, g) }

// OpenCSRFile memory-maps a BCSR file and wraps it as a Graph without
// copying the edge arrays. The caller must keep the returned CSRFile
// open while the Graph is in use and Close it afterwards.
func OpenCSRFile(path string) (*CSRFile, error) { return graph.OpenCSRFile(path) }

// ReadCSRFile parses a BCSR stream into a heap-allocated Graph. Use
// OpenCSRFile instead when the data is a local file: mapping skips the
// copy entirely.
func ReadCSRFile(r io.Reader) (*Graph, error) { return graph.ReadCSRFile(r) }

// SetCompactCSR toggles the compact (int32-indexed) in-memory CSR
// representation for subsequently constructed graphs. It is enabled by
// default; disabling it is an ablation knob for measuring the memory
// and bandwidth effect of the compact form. Not safe to flip
// concurrently with graph construction.
func SetCompactCSR(enabled bool) { graph.DisableCompactCSR = !enabled }

// Exact solvers.

// ExactBisectionWidth computes the exact minimum bisection (≤ 28
// vertices) with a witness.
func ExactBisectionWidth(g *Graph) (int64, []uint8, error) { return exact.BisectionWidth(g) }

// CycleCollectionWidth computes the exact bisection width of a disjoint
// union of cycles.
func CycleCollectionWidth(g *Graph) (int64, error) { return exact.CycleCollectionWidth(g) }

// Matching and compaction primitives.

// RandomMaximalMatching returns a random maximal matching as a mate
// array (−1 = unmatched).
func RandomMaximalMatching(g *Graph, r *Rand) []int32 { return matching.RandomMaximal(g, r) }

// HeavyEdgeMatching returns a maximal matching preferring heavy edges.
func HeavyEdgeMatching(g *Graph, r *Rand) []int32 { return matching.HeavyEdge(g, r) }

// Contraction records a fine↔coarse correspondence.
type Contraction = coarsen.Contraction

// Contract coalesces the matched pairs of mate into a weighted coarse
// graph.
func Contract(g *Graph, mate []int32) (*Contraction, error) { return coarsen.Contract(g, mate) }

// RepairBalance greedily restores weight balance and returns the final
// imbalance.
func RepairBalance(b *Bisection, maxImbalance int64) int64 {
	return partition.RepairBalance(b, maxImbalance)
}

// Netlists.

// RecursiveKWay partitions g into k parts by recursive bisection with
// the given bisector (k need not be a power of two).
func RecursiveKWay(g *Graph, k int, bisector Bisector, r *Rand) (*KWayPartition, error) {
	return kway.Recursive(g, k, bisector, r)
}

// KWayOptions configures RecursiveKWayOpts: an observer receiving one
// level_done event per split plus a final run_done, a RunControl whose
// stop collapses the remaining subproblems (the partial partition is
// still valid and returned with the stop sentinel), and KeepBisector
// to opt out of the default per-run workspace wrapping.
type KWayOptions = kway.Options

// RecursiveKWayOpts is RecursiveKWay with observability and run
// control; see KWayOptions.
func RecursiveKWayOpts(g *Graph, k int, bisector Bisector, opts KWayOptions, r *Rand) (*KWayPartition, error) {
	return kway.RecursiveOpts(g, k, bisector, opts, r)
}

// RefineKWayPairs improves a k-way partition in place with pairwise FM
// between parts sharing cut edges; returns the total cut improvement.
func RefineKWayPairs(p *KWayPartition, rounds int) (int64, error) {
	return kway.RefinePairs(p, rounds)
}

// KWayDirectRefineOptions configures DirectRefineKWay.
type KWayDirectRefineOptions = kway.DirectRefineOptions

// DirectRefineKWay improves a k-way partition in place with greedy
// boundary moves (cheaper than pairwise FM; useful for large k).
func DirectRefineKWay(p *KWayPartition, opts KWayDirectRefineOptions) (int64, error) {
	return kway.DirectRefine(p, opts)
}

// HFMBisect partitions a netlist directly with hypergraph FM, minimizing
// cut nets (the VLSI metric), from a random area-balanced start.
func HFMBisect(nl *Netlist, opts HFMOptions, r *Rand) (HFMResult, error) {
	return hfm.Bisect(nl, opts, r)
}

// HFMRefine improves an existing netlist side assignment in place with
// hypergraph FM passes.
func HFMRefine(nl *Netlist, sides []uint8, opts HFMOptions) (HFMResult, error) {
	return hfm.Refine(nl, sides, opts)
}

// NewHFMWorkspace returns an empty reusable hypergraph-FM workspace.
func NewHFMWorkspace() *HFMWorkspace { return hfm.NewWorkspace() }

// InducedSubgraph returns the subgraph induced by vertices and the
// new-to-old id mapping.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, []int32, error) {
	return graph.Induced(g, vertices)
}

// PermuteGraph relabels g's vertices by the permutation perm.
func PermuteGraph(g *Graph, perm []int32) (*Graph, error) { return graph.Permute(g, perm) }

// UnionGraphs returns the disjoint union of a and b.
func UnionGraphs(a, b *Graph) (*Graph, error) { return graph.Union(a, b) }

// TreeBisectionWidth computes the exact minimum bisection of a forest in
// O(n²) with a witness.
func TreeBisectionWidth(g *Graph) (int64, []uint8, error) { return exact.TreeBisectionWidth(g) }

// Lambda2 estimates the algebraic connectivity (second-smallest Laplacian
// eigenvalue) via the Fiedler vector's Rayleigh quotient.
func Lambda2(g *Graph, opts SpectralOptions, r *Rand) (float64, error) {
	return spectral.Lambda2(g, opts, r)
}

// SpectralLowerBound returns the Fiedler lower bound λ₂·|V|/4 on the
// bisection width (approximate: λ₂ is estimated).
func SpectralLowerBound(g *Graph, opts SpectralOptions, r *Rand) (float64, error) {
	return spectral.BisectionLowerBound(g, opts, r)
}

// Run control (docs/ROBUSTNESS.md).

type (
	// RunControl carries cancellation and checkpoint budgets into
	// algorithm runs; see WithControl and BisectCtx.
	RunControl = runctl.Control
	// ControllableBisector is a Bisector whose runs can be interrupted
	// at coarse checkpoints, returning their best-so-far bisection.
	ControllableBisector = core.Controllable
	// PoolError aggregates the failed starts of a ParallelBestOf run;
	// it can accompany a usable best-of-survivors bisection.
	PoolError = core.PoolError
	// PanicError is a panic captured inside one start of a parallel run.
	PanicError = core.PanicError
)

// ErrBudgetExceeded is returned (possibly wrapped) by runs stopped by a
// checkpoint budget; IsStopError reports true for it.
var ErrBudgetExceeded = runctl.ErrBudgetExceeded

// NewRunControl returns a control that stops at ctx's cancellation or
// after budget checkpoint polls, whichever comes first (budget ≤ 0 =
// unlimited). A nil *RunControl is valid and never stops.
func NewRunControl(ctx context.Context, budget int64) *RunControl { return runctl.New(ctx, budget) }

// IsStopError reports whether err is a cooperative-stop sentinel
// (budget exhausted, context cancelled, or deadline exceeded) — i.e.
// whether an accompanying bisection is a valid best-so-far result
// rather than debris from a failure.
func IsStopError(err error) bool { return runctl.IsStop(err) }

// WithControl attaches ctl to b if its algorithm supports cooperative
// interruption; otherwise (or when ctl is nil) returns b unchanged.
func WithControl(b Bisector, ctl *RunControl) Bisector { return core.WithControl(b, ctl) }

// BisectCtx runs b on g under ctx: on cancellation or deadline the run
// stops at its next checkpoint and returns its valid best-so-far
// bisection together with ctx's error.
func BisectCtx(ctx context.Context, b Bisector, g *Graph, r *Rand) (*Bisection, error) {
	return core.BisectCtx(ctx, b, g, r)
}

// RefineCtx improves bis in place under ctx; see BisectCtx.
func RefineCtx(ctx context.Context, b RefinableBisector, bis *Bisection, r *Rand) error {
	return core.RefineCtx(ctx, b, bis, r)
}

// WriteFileAtomic writes data to path atomically (temp file in the same
// directory + fsync + rename), so readers never observe a partial file
// and a crash mid-write leaves any previous contents intact.
func WriteFileAtomic(path string, data []byte, perm uint32) error {
	return fsx.WriteFileAtomic(path, data, iofs.FileMode(perm))
}

// NewNetlist returns an empty VLSI netlist.
func NewNetlist() *Netlist { return netlist.New() }

// ParseNetlist reads the netlist text format.
func ParseNetlist(r io.Reader) (*Netlist, error) { return netlist.Parse(r) }

// WriteNetlist writes the netlist text format.
func WriteNetlist(w io.Writer, nl *Netlist) error { return netlist.Write(w, nl) }
