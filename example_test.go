package bisect_test

// Testable examples: these run under `go test` and render in godoc, so
// the documented usage is guaranteed to stay correct.

import (
	"fmt"

	bisect "repro"
)

func ExampleNewBisector() {
	// A 3-regular graph on 500 vertices with a planted bisection of width 8.
	g, err := bisect.BReg(500, 8, 3, bisect.NewRand(1))
	if err != nil {
		panic(err)
	}
	ckl, err := bisect.NewBisector("ckl")
	if err != nil {
		panic(err)
	}
	b, err := bisect.BestOf{Inner: ckl, Starts: 2}.Bisect(g, bisect.NewRand(2))
	if err != nil {
		panic(err)
	}
	fmt.Println("cut:", b.Cut())
	fmt.Println("balanced:", b.Imbalance() == 0)
	// Output:
	// cut: 8
	// balanced: true
}

func ExampleBuilder() {
	b := bisect.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddWeightedEdge(2, 3, 5)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), "vertices,", g.M(), "edges, total weight", g.TotalEdgeWeight())
	// Output:
	// 4 vertices, 3 edges, total weight 7
}

func ExampleNewBisection() {
	g, _ := bisect.Cycle(6)
	// Contiguous halves of a cycle cut exactly two edges.
	b, err := bisect.NewBisection(g, []uint8{0, 0, 0, 1, 1, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("cut:", b.Cut())
	// Moving a boundary vertex across changes the cut by its gain.
	fmt.Println("gain of vertex 0:", b.Gain(0))
	// Output:
	// cut: 2
	// gain of vertex 0: 0
}

func ExampleCompacted() {
	// The paper's compaction heuristic wrapping Kernighan–Lin.
	g, _ := bisect.Ladder(100) // 200-vertex ladder; bisection width 2
	ckl := bisect.Compacted{Inner: bisect.KL{}}
	b, err := bisect.BestOf{Inner: ckl, Starts: 2}.Bisect(g, bisect.NewRand(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("ladder cut:", b.Cut())
	// Output:
	// ladder cut: 2
}

func ExampleTreeBisectionWidth() {
	// Exact optimum for a forest in O(n²): a 1022-node complete binary
	// tree splits 511/511 by cutting the root's left edge.
	tree, _ := bisect.CompleteBinaryTree(1022)
	width, _, err := bisect.TreeBisectionWidth(tree)
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal width:", width)
	// Output:
	// optimal width: 1
}

func ExampleRecursiveKWay() {
	g, _ := bisect.Grid(8, 8)
	p, err := bisect.RecursiveKWay(g, 4, bisect.Compacted{Inner: bisect.KL{}}, bisect.NewRand(4))
	if err != nil {
		panic(err)
	}
	fmt.Println("parts:", p.K())
	fmt.Println("weights:", p.PartWeights())
	// Output:
	// parts: 4
	// weights: [16 16 16 16]
}

func ExampleExactBisectionWidth() {
	g, _ := bisect.Hypercube(3)
	width, _, err := bisect.ExactBisectionWidth(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("Q3 bisection width:", width)
	// Output:
	// Q3 bisection width: 4
}
